// Package jq is a server-side jQuery analog: CSS3-selector based DOM
// querying and manipulation with a chainable API. It fills the role of the
// "server-side port of the popular jQuery DOM manipulation library" that
// m.Site integrates (§3.2): the attribute system and the AJAX rewriter
// express page modifications against it, keeping heavyweight browser
// instances out of the common path.
package jq

import (
	"strings"

	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/html"
)

// Selection is an ordered, duplicate-free set of nodes plus the document
// they came from. Methods that read return data for the first node
// (jQuery convention); methods that write apply to every node and return
// the Selection for chaining.
type Selection struct {
	doc   *dom.Node
	nodes []*dom.Node
	err   error
}

// Select parses selector and returns the matching elements under root,
// in document order. A selector parse error is carried on the Selection
// (observable via Err) and yields an empty selection, so chains degrade
// gracefully the way jQuery's do.
func Select(root *dom.Node, selector string) *Selection {
	sels, err := css.ParseSelectorList(selector)
	if err != nil {
		return &Selection{doc: root, err: err}
	}
	var nodes []*dom.Node
	for _, sel := range sels {
		nodes = append(nodes, sel.QueryAll(root)...)
	}
	return &Selection{doc: root, nodes: dom.SortNodes(root, nodes)}
}

// Wrap builds a Selection over explicit nodes.
func Wrap(root *dom.Node, nodes ...*dom.Node) *Selection {
	return &Selection{doc: root, nodes: dom.SortNodes(root, nodes)}
}

// Err returns the selector parse error, if any.
func (s *Selection) Err() error { return s.err }

// Len returns the number of selected nodes.
func (s *Selection) Len() int { return len(s.nodes) }

// Nodes returns a copy of the selected nodes.
func (s *Selection) Nodes() []*dom.Node {
	out := make([]*dom.Node, len(s.nodes))
	copy(out, s.nodes)
	return out
}

// First returns the first selected node, or nil.
func (s *Selection) First() *dom.Node {
	if len(s.nodes) == 0 {
		return nil
	}
	return s.nodes[0]
}

// Eq returns a Selection containing only the i-th node (negative counts
// from the end), or an empty Selection when out of range.
func (s *Selection) Eq(i int) *Selection {
	if i < 0 {
		i += len(s.nodes)
	}
	if i < 0 || i >= len(s.nodes) {
		return &Selection{doc: s.doc, err: s.err}
	}
	return &Selection{doc: s.doc, nodes: []*dom.Node{s.nodes[i]}, err: s.err}
}

// Find returns descendants of the selected nodes matching selector.
func (s *Selection) Find(selector string) *Selection {
	sels, err := css.ParseSelectorList(selector)
	if err != nil {
		return &Selection{doc: s.doc, err: err}
	}
	var nodes []*dom.Node
	for _, n := range s.nodes {
		for _, sel := range sels {
			for _, m := range sel.QueryAll(n) {
				if m != n {
					nodes = append(nodes, m)
				}
			}
		}
	}
	return &Selection{doc: s.doc, nodes: dom.SortNodes(s.doc, nodes), err: s.err}
}

// Filter keeps only the selected nodes matching selector.
func (s *Selection) Filter(selector string) *Selection {
	sels, err := css.ParseSelectorList(selector)
	if err != nil {
		return &Selection{doc: s.doc, err: err}
	}
	var nodes []*dom.Node
	for _, n := range s.nodes {
		for _, sel := range sels {
			if sel.Match(n) {
				nodes = append(nodes, n)
				break
			}
		}
	}
	return &Selection{doc: s.doc, nodes: nodes, err: s.err}
}

// Not removes the selected nodes matching selector.
func (s *Selection) Not(selector string) *Selection {
	sels, err := css.ParseSelectorList(selector)
	if err != nil {
		return &Selection{doc: s.doc, err: err}
	}
	var nodes []*dom.Node
outer:
	for _, n := range s.nodes {
		for _, sel := range sels {
			if sel.Match(n) {
				continue outer
			}
		}
		nodes = append(nodes, n)
	}
	return &Selection{doc: s.doc, nodes: nodes, err: s.err}
}

// Parent returns the distinct parents of the selected nodes.
func (s *Selection) Parent() *Selection {
	var nodes []*dom.Node
	for _, n := range s.nodes {
		if n.Parent != nil && n.Parent.Type == dom.ElementNode {
			nodes = append(nodes, n.Parent)
		}
	}
	return &Selection{doc: s.doc, nodes: dom.SortNodes(s.doc, nodes), err: s.err}
}

// Closest returns, for each selected node, the nearest ancestor (or self)
// matching selector.
func (s *Selection) Closest(selector string) *Selection {
	sels, err := css.ParseSelectorList(selector)
	if err != nil {
		return &Selection{doc: s.doc, err: err}
	}
	var nodes []*dom.Node
	for _, n := range s.nodes {
		for p := n; p != nil && p.Type == dom.ElementNode; p = p.Parent {
			matched := false
			for _, sel := range sels {
				if sel.Match(p) {
					matched = true
					break
				}
			}
			if matched {
				nodes = append(nodes, p)
				break
			}
		}
	}
	return &Selection{doc: s.doc, nodes: dom.SortNodes(s.doc, nodes), err: s.err}
}

// Children returns the element children of the selected nodes, optionally
// filtered by selector.
func (s *Selection) Children(selector string) *Selection {
	var nodes []*dom.Node
	for _, n := range s.nodes {
		nodes = append(nodes, n.Children()...)
	}
	out := &Selection{doc: s.doc, nodes: dom.SortNodes(s.doc, nodes), err: s.err}
	if selector != "" {
		return out.Filter(selector)
	}
	return out
}

// Each calls fn for each selected node with its index.
func (s *Selection) Each(fn func(i int, n *dom.Node)) *Selection {
	for i, n := range s.nodes {
		fn(i, n)
	}
	return s
}

// --- readers ---

// Text returns the combined text of every selected node.
func (s *Selection) Text() string {
	var b strings.Builder
	for _, n := range s.nodes {
		b.WriteString(n.Text())
	}
	return b.String()
}

// Attr returns the named attribute of the first node.
func (s *Selection) Attr(key string) (string, bool) {
	if len(s.nodes) == 0 {
		return "", false
	}
	return s.nodes[0].Attr(key)
}

// AttrOr returns the named attribute of the first node, or def.
func (s *Selection) AttrOr(key, def string) string {
	if v, ok := s.Attr(key); ok {
		return v
	}
	return def
}

// Html returns the inner HTML of the first node.
func (s *Selection) Html() string {
	if len(s.nodes) == 0 {
		return ""
	}
	var b strings.Builder
	for c := s.nodes[0].FirstChild; c != nil; c = c.NextSibling {
		b.WriteString(html.Render(c))
	}
	return b.String()
}

// OuterHtml returns the outer HTML of the first node.
func (s *Selection) OuterHtml() string {
	if len(s.nodes) == 0 {
		return ""
	}
	return html.Render(s.nodes[0])
}

// HasClass reports whether any selected node has the class.
func (s *Selection) HasClass(c string) bool {
	for _, n := range s.nodes {
		if n.HasClass(c) {
			return true
		}
	}
	return false
}

// --- writers (chainable) ---

// SetAttr sets an attribute on every selected node.
func (s *Selection) SetAttr(key, val string) *Selection {
	for _, n := range s.nodes {
		n.SetAttr(key, val)
	}
	return s
}

// RemoveAttr removes an attribute from every selected node.
func (s *Selection) RemoveAttr(key string) *Selection {
	for _, n := range s.nodes {
		n.DelAttr(key)
	}
	return s
}

// AddClass adds a class to every selected node.
func (s *Selection) AddClass(c string) *Selection {
	for _, n := range s.nodes {
		n.AddClass(c)
	}
	return s
}

// RemoveClass removes a class from every selected node.
func (s *Selection) RemoveClass(c string) *Selection {
	for _, n := range s.nodes {
		n.RemoveClass(c)
	}
	return s
}

// SetText replaces the content of every selected node with text.
func (s *Selection) SetText(text string) *Selection {
	for _, n := range s.nodes {
		n.SetText(text)
	}
	return s
}

// SetHtml replaces the content of every selected node with parsed markup.
func (s *Selection) SetHtml(markup string) *Selection {
	for _, n := range s.nodes {
		n.Empty()
		for _, frag := range html.ParseFragment(markup) {
			n.AppendChild(frag)
		}
	}
	return s
}

// Append parses markup and appends it to every selected node.
func (s *Selection) Append(markup string) *Selection {
	for _, n := range s.nodes {
		for _, frag := range html.ParseFragment(markup) {
			n.AppendChild(frag)
		}
	}
	return s
}

// Prepend parses markup and prepends it to every selected node.
func (s *Selection) Prepend(markup string) *Selection {
	for _, n := range s.nodes {
		frags := html.ParseFragment(markup)
		for i := len(frags) - 1; i >= 0; i-- {
			n.PrependChild(frags[i])
		}
	}
	return s
}

// AppendNode appends node to the first selected node (cloning for any
// additional selected nodes).
func (s *Selection) AppendNode(node *dom.Node) *Selection {
	for i, n := range s.nodes {
		if i == 0 {
			n.AppendChild(node)
			continue
		}
		n.AppendChild(node.Clone())
	}
	return s
}

// Before inserts parsed markup immediately before every selected node.
func (s *Selection) Before(markup string) *Selection {
	for _, n := range s.nodes {
		if n.Parent == nil {
			continue
		}
		for _, frag := range html.ParseFragment(markup) {
			n.Parent.InsertBefore(frag, n)
		}
	}
	return s
}

// After inserts parsed markup immediately after every selected node.
func (s *Selection) After(markup string) *Selection {
	for _, n := range s.nodes {
		if n.Parent == nil {
			continue
		}
		frags := html.ParseFragment(markup)
		for i := len(frags) - 1; i >= 0; i-- {
			n.InsertAfter(frags[i])
		}
	}
	return s
}

// Remove detaches every selected node from the document.
func (s *Selection) Remove() *Selection {
	for _, n := range s.nodes {
		n.Detach()
	}
	return s
}

// ReplaceWith replaces every selected node with parsed markup.
func (s *Selection) ReplaceWith(markup string) *Selection {
	for _, n := range s.nodes {
		if n.Parent == nil {
			continue
		}
		parent, next := n.Parent, n.NextSibling
		n.Detach()
		for _, frag := range html.ParseFragment(markup) {
			parent.InsertBefore(frag, next)
		}
	}
	return s
}

// Wrap wraps each selected node in the (single-element) parsed markup.
func (s *Selection) Wrap(markup string) *Selection {
	for _, n := range s.nodes {
		if n.Parent == nil {
			continue
		}
		frags := html.ParseFragment(markup)
		if len(frags) == 0 || frags[0].Type != dom.ElementNode {
			continue
		}
		wrapper := frags[0]
		// Insert the wrapper where n was, then move n into its innermost
		// element.
		n.ReplaceWith(wrapper)
		inner := wrapper
		for {
			kids := inner.Children()
			if len(kids) == 0 {
				break
			}
			inner = kids[0]
		}
		inner.AppendChild(n)
	}
	return s
}

// Hide sets display:none via the style attribute on every selected node —
// the paper's "objects can be hidden (via CSS style properties)".
func (s *Selection) Hide() *Selection {
	for _, n := range s.nodes {
		cur := n.AttrOr("style", "")
		if cur != "" && !strings.HasSuffix(strings.TrimSpace(cur), ";") {
			cur += "; "
		}
		n.SetAttr("style", cur+"display: none")
	}
	return s
}

// CSSProp sets one inline style property on every selected node,
// replacing a previous inline value for the same property.
func (s *Selection) CSSProp(prop, value string) *Selection {
	prop = strings.ToLower(strings.TrimSpace(prop))
	for _, n := range s.nodes {
		decls := css.ParseDeclarations(n.AttrOr("style", ""))
		var b strings.Builder
		for _, d := range decls {
			if d.Prop == prop {
				continue
			}
			b.WriteString(d.Prop)
			b.WriteString(": ")
			b.WriteString(d.Value)
			b.WriteString("; ")
		}
		b.WriteString(prop)
		b.WriteString(": ")
		b.WriteString(value)
		n.SetAttr("style", b.String())
	}
	return s
}
