package jq

import (
	"strings"
	"testing"

	"msite/internal/dom"
	"msite/internal/html"
)

const testPage = `
<html><body>
  <div id="wrap">
    <ul class="nav">
      <li class="active"><a href="/a">A</a></li>
      <li><a href="/b">B</a></li>
      <li><a href="/c">C</a></li>
    </ul>
    <div class="post"><p>first post</p></div>
    <div class="post"><p>second post</p></div>
  </div>
</body></html>`

func page(t *testing.T) *dom.Node {
	t.Helper()
	return html.Parse(testPage)
}

func TestSelectBasics(t *testing.T) {
	doc := page(t)
	if n := Select(doc, "li").Len(); n != 3 {
		t.Fatalf("li = %d", n)
	}
	if n := Select(doc, ".post").Len(); n != 2 {
		t.Fatalf(".post = %d", n)
	}
	if n := Select(doc, "li.active a").Len(); n != 1 {
		t.Fatalf("li.active a = %d", n)
	}
}

func TestSelectList(t *testing.T) {
	doc := page(t)
	sel := Select(doc, "ul, .post")
	if sel.Len() != 3 {
		t.Fatalf("list = %d", sel.Len())
	}
	// Document order: ul before posts.
	if sel.First().Tag != "ul" {
		t.Fatal("order wrong")
	}
}

func TestSelectBadSelector(t *testing.T) {
	doc := page(t)
	sel := Select(doc, ":nosuch(")
	if sel.Err() == nil {
		t.Fatal("expected error")
	}
	if sel.Len() != 0 {
		t.Fatal("bad selector should be empty")
	}
	// Chains on an errored selection stay empty and keep the error.
	chained := sel.Find("li").Filter(".x")
	if chained.Len() != 0 {
		t.Fatal("chain on error should be empty")
	}
}

func TestEq(t *testing.T) {
	doc := page(t)
	lis := Select(doc, "li")
	if !lis.Eq(0).HasClass("active") {
		t.Fatal("Eq(0) wrong")
	}
	if lis.Eq(-1).Find("a").AttrOr("href", "") != "/c" {
		t.Fatal("Eq(-1) wrong")
	}
	if lis.Eq(99).Len() != 0 {
		t.Fatal("Eq out of range should be empty")
	}
}

func TestFindFilterNot(t *testing.T) {
	doc := page(t)
	if n := Select(doc, "#wrap").Find("a").Len(); n != 3 {
		t.Fatalf("find a = %d", n)
	}
	if n := Select(doc, "li").Filter(".active").Len(); n != 1 {
		t.Fatalf("filter = %d", n)
	}
	if n := Select(doc, "li").Not(".active").Len(); n != 2 {
		t.Fatalf("not = %d", n)
	}
}

func TestFindExcludesSelf(t *testing.T) {
	doc := page(t)
	if n := Select(doc, "div").Find("div").Len(); n != 2 {
		// #wrap contains 2 .post divs; .post divs contain no div.
		t.Fatalf("find div = %d, want 2", n)
	}
}

func TestParentClosestChildren(t *testing.T) {
	doc := page(t)
	parents := Select(doc, "a").Parent()
	if parents.Len() != 3 || parents.First().Tag != "li" {
		t.Fatalf("parents = %d %q", parents.Len(), parents.First().Tag)
	}
	closest := Select(doc, "a").Closest("ul")
	if closest.Len() != 1 || closest.First().Tag != "ul" {
		t.Fatal("closest wrong")
	}
	self := Select(doc, "ul").Closest(".nav")
	if self.Len() != 1 {
		t.Fatal("closest should match self")
	}
	kids := Select(doc, "#wrap").Children("")
	if kids.Len() != 3 {
		t.Fatalf("children = %d", kids.Len())
	}
	posts := Select(doc, "#wrap").Children(".post")
	if posts.Len() != 2 {
		t.Fatalf("filtered children = %d", posts.Len())
	}
}

func TestTextAndHtml(t *testing.T) {
	doc := page(t)
	if got := Select(doc, ".post p").Eq(0).Text(); got != "first post" {
		t.Fatalf("text = %q", got)
	}
	h := Select(doc, ".post").Eq(0).Html()
	if !strings.Contains(h, "<p>first post</p>") {
		t.Fatalf("html = %q", h)
	}
	oh := Select(doc, ".post").Eq(0).OuterHtml()
	if !strings.HasPrefix(oh, `<div class="post">`) {
		t.Fatalf("outer = %q", oh)
	}
}

func TestAttrHelpers(t *testing.T) {
	doc := page(t)
	a := Select(doc, "a")
	if v, ok := a.Attr("href"); !ok || v != "/a" {
		t.Fatalf("attr = %q %v", v, ok)
	}
	if Select(doc, "video").AttrOr("src", "dflt") != "dflt" {
		t.Fatal("empty selection AttrOr wrong")
	}
	a.SetAttr("target", "_blank")
	for _, n := range a.Nodes() {
		if n.AttrOr("target", "") != "_blank" {
			t.Fatal("SetAttr not applied to all")
		}
	}
	a.RemoveAttr("target")
	if Select(doc, "a[target]").Len() != 0 {
		t.Fatal("RemoveAttr failed")
	}
}

func TestClassHelpers(t *testing.T) {
	doc := page(t)
	lis := Select(doc, "li")
	lis.AddClass("m")
	if Select(doc, "li.m").Len() != 3 {
		t.Fatal("AddClass failed")
	}
	lis.RemoveClass("m")
	if Select(doc, "li.m").Len() != 0 {
		t.Fatal("RemoveClass failed")
	}
	if !Select(doc, "li").HasClass("active") {
		t.Fatal("HasClass should see any node's class")
	}
}

func TestSetTextAndSetHtml(t *testing.T) {
	doc := page(t)
	Select(doc, ".post p").SetText("redacted")
	if got := Select(doc, ".post").Eq(1).Text(); got != "redacted" {
		t.Fatalf("text = %q", got)
	}
	Select(doc, ".post").Eq(0).SetHtml("<span>new <b>bold</b></span>")
	if Select(doc, ".post b").Len() != 1 {
		t.Fatal("SetHtml did not parse markup")
	}
}

func TestAppendPrepend(t *testing.T) {
	doc := page(t)
	Select(doc, "ul").Append(`<li class="new">D</li>`)
	lis := Select(doc, "li")
	if lis.Len() != 4 || !lis.Eq(-1).HasClass("new") {
		t.Fatal("append wrong")
	}
	Select(doc, "ul").Prepend(`<li class="zero">Z</li><li class="one">O</li>`)
	lis = Select(doc, "li")
	if lis.Len() != 6 || !lis.Eq(0).HasClass("zero") || !lis.Eq(1).HasClass("one") {
		t.Fatalf("prepend order wrong: %q %q", lis.Eq(0).AttrOr("class", ""), lis.Eq(1).AttrOr("class", ""))
	}
}

func TestBeforeAfter(t *testing.T) {
	doc := page(t)
	Select(doc, "ul").Before(`<h2>Menu</h2>`)
	h2 := Select(doc, "h2").First()
	if h2 == nil || h2.NextElement().Tag != "ul" {
		t.Fatal("before wrong")
	}
	Select(doc, "ul").After(`<p id="p1">x</p><p id="p2">y</p>`)
	ul := Select(doc, "ul").First()
	if ul.NextElement().ID() != "p1" || ul.NextElement().NextElement().ID() != "p2" {
		t.Fatal("after order wrong")
	}
}

func TestRemoveAndReplace(t *testing.T) {
	doc := page(t)
	Select(doc, ".post").Remove()
	if Select(doc, ".post").Len() != 0 {
		t.Fatal("remove failed")
	}
	Select(doc, "ul").ReplaceWith(`<ol class="mobile-nav"><li>m</li></ol>`)
	if Select(doc, "ul").Len() != 0 || Select(doc, "ol.mobile-nav").Len() != 1 {
		t.Fatal("replace failed")
	}
}

func TestWrap(t *testing.T) {
	doc := page(t)
	Select(doc, "ul").Wrap(`<div class="outer"><div class="inner"></div></div>`)
	inner := Select(doc, ".inner ul")
	if inner.Len() != 1 {
		t.Fatal("wrap did not nest into innermost")
	}
	outer := Select(doc, "#wrap > .outer")
	if outer.Len() != 1 {
		t.Fatal("wrapper not placed at original position")
	}
}

func TestHideAndCSSProp(t *testing.T) {
	doc := page(t)
	Select(doc, ".post").Eq(0).Hide()
	style := Select(doc, ".post").Eq(0).AttrOr("style", "")
	if !strings.Contains(style, "display: none") {
		t.Fatalf("style = %q", style)
	}
	Select(doc, "ul").CSSProp("width", "100px").CSSProp("width", "50px")
	style = Select(doc, "ul").AttrOr("style", "")
	if strings.Contains(style, "100px") || !strings.Contains(style, "width: 50px") {
		t.Fatalf("CSSProp replace failed: %q", style)
	}
}

func TestEachIndexes(t *testing.T) {
	doc := page(t)
	var seen []int
	Select(doc, "li").Each(func(i int, n *dom.Node) {
		seen = append(seen, i)
		n.SetAttr("data-i", "x")
	})
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("each = %v", seen)
	}
}

func TestAppendNodeClonesForExtras(t *testing.T) {
	doc := page(t)
	banner := dom.NewElement("div")
	banner.SetAttr("class", "ad")
	Select(doc, ".post").AppendNode(banner)
	ads := Select(doc, ".post .ad")
	if ads.Len() != 2 {
		t.Fatalf("ads = %d", ads.Len())
	}
	if ads.Nodes()[0] == ads.Nodes()[1] {
		t.Fatal("same node attached twice")
	}
}

func TestSelectDeduplicates(t *testing.T) {
	doc := page(t)
	// Both selectors match the same ul.
	sel := Select(doc, "ul, .nav")
	if sel.Len() != 1 {
		t.Fatalf("dedupe failed: %d", sel.Len())
	}
}
