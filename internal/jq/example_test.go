package jq_test

import (
	"fmt"

	"msite/internal/html"
	"msite/internal/jq"
)

// The server-side jQuery workflow: select, read, mutate.
func ExampleSelect() {
	doc := html.Parse(`<ul class="nav">
		<li><a href="/home">Home</a></li>
		<li><a href="/forum">Forum</a></li>
	</ul>`)

	links := jq.Select(doc, "ul.nav a")
	fmt.Println("links:", links.Len())
	fmt.Println("first:", links.AttrOr("href", ""))

	links.AddClass("mobile")
	jq.Select(doc, "ul.nav").Append(`<li><a href="/search">Search</a></li>`)
	fmt.Println("after:", jq.Select(doc, "a").Len())
	// Output:
	// links: 2
	// first: /home
	// after: 3
}

func ExampleSelection_ReplaceWith() {
	doc := html.Tidy(`<div id="ad"><img src="/big-banner.gif" width="728"></div>`)
	jq.Select(doc, "#ad").ReplaceWith(`<div id="ad-mobile">small ad</div>`)
	fmt.Println(html.Render(doc.Body()))
	// Output:
	// <body><div id="ad-mobile">small ad</div></body>
}
