package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func newTestCache() (*Cache, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	return NewWithClock(clk.Now), clk
}

func TestPutGet(t *testing.T) {
	c, _ := newTestCache()
	c.Put("k", Entry{Data: []byte("v"), MIME: "text/plain"}, time.Minute)
	e, ok := c.Get("k")
	if !ok || string(e.Data) != "v" || e.MIME != "text/plain" {
		t.Fatalf("get = %+v, %v", e, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key should miss")
	}
}

func TestExpiry(t *testing.T) {
	c, clk := newTestCache()
	c.Put("k", Entry{Data: []byte("v")}, time.Hour)
	clk.Advance(59 * time.Minute)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("should still be live")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("should be expired")
	}
}

func TestPutZeroTTLIgnored(t *testing.T) {
	c, _ := newTestCache()
	c.Put("k", Entry{Data: []byte("v")}, 0)
	if c.Len() != 0 {
		t.Fatal("zero ttl should not store")
	}
}

func TestGetOrFillCachesResult(t *testing.T) {
	c, _ := newTestCache()
	calls := 0
	fill := func() (Entry, error) {
		calls++
		return Entry{Data: []byte("rendered")}, nil
	}
	for i := 0; i < 3; i++ {
		e, err := c.GetOrFill("snap", time.Hour, fill)
		if err != nil || string(e.Data) != "rendered" {
			t.Fatalf("fill %d: %v %v", i, e, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fill calls = %d, want 1", calls)
	}
}

func TestGetOrFillZeroTTLNotStored(t *testing.T) {
	c, _ := newTestCache()
	calls := 0
	fill := func() (Entry, error) {
		calls++
		return Entry{Data: []byte("x")}, nil
	}
	_, _ = c.GetOrFill("k", 0, fill)
	_, _ = c.GetOrFill("k", 0, fill)
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (uncacheable)", calls)
	}
}

func TestGetOrFillError(t *testing.T) {
	c, _ := newTestCache()
	boom := errors.New("render failed")
	if _, err := c.GetOrFill("k", time.Hour, func() (Entry, error) {
		return Entry{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// After the failure the key refills.
	e, err := c.GetOrFill("k", time.Hour, func() (Entry, error) {
		return Entry{Data: []byte("ok")}, nil
	})
	if err != nil || string(e.Data) != "ok" {
		t.Fatalf("refill = %v %v", e, err)
	}
}

func TestGetOrFillSingleFlight(t *testing.T) {
	c, _ := newTestCache()
	var calls int32
	var release = make(chan struct{})
	fill := func() (Entry, error) {
		atomic.AddInt32(&calls, 1)
		<-release
		return Entry{Data: []byte("once")}, nil
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]Entry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.GetOrFill("hot", time.Hour, fill)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = e
		}(i)
	}
	// Give workers a moment to pile onto the pending fill.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	for i, e := range results {
		if string(e.Data) != "once" {
			t.Fatalf("worker %d got %q", i, e.Data)
		}
	}
}

func TestDeletePurgeSweepLen(t *testing.T) {
	c, clk := newTestCache()
	c.Put("a", Entry{Data: []byte("1")}, time.Minute)
	c.Put("b", Entry{Data: []byte("2")}, time.Hour)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Delete("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted key present")
	}
	c.Put("a", Entry{Data: []byte("1")}, time.Minute)
	clk.Advance(30 * time.Minute)
	if n := c.Sweep(); n != 1 {
		t.Fatalf("sweep = %d, want 1", n)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
}

func TestStats(t *testing.T) {
	c, _ := newTestCache()
	c.Put("k", Entry{Data: []byte("v")}, time.Hour)
	c.Get("k")
	c.Get("k")
	c.Get("miss")
	_, _ = c.GetOrFill("f", time.Hour, func() (Entry, error) { return Entry{}, nil })
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c, _ := newTestCache()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%10)
				switch j % 4 {
				case 0:
					c.Put(key, Entry{Data: []byte{byte(j)}}, time.Minute)
				case 1:
					c.Get(key)
				case 2:
					_, _ = c.GetOrFill(key, time.Minute, func() (Entry, error) {
						return Entry{Data: []byte("f")}, nil
					})
				case 3:
					c.Delete(key)
				}
			}
		}(i)
	}
	wg.Wait()
}
