package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// swrClock is a mutable fake clock safe for concurrent reads.
type swrClock struct{ now atomic.Int64 }

func newSWRClock() *swrClock {
	c := &swrClock{}
	c.now.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *swrClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *swrClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

func fillWith(v string, calls *atomic.Int32) func() (Entry, error) {
	return func() (Entry, error) {
		if calls != nil {
			calls.Add(1)
		}
		return Entry{Data: []byte(v), MIME: "text/plain"}, nil
	}
}

func TestGetOrFillStaleFreshHit(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	defer c.Close()
	var calls atomic.Int32
	e, stale, err := c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v1", &calls))
	if err != nil || stale || string(e.Data) != "v1" {
		t.Fatalf("first = %q stale=%v err=%v", e.Data, stale, err)
	}
	e, stale, err = c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v2", &calls))
	if err != nil || stale || string(e.Data) != "v1" {
		t.Fatalf("hit = %q stale=%v err=%v", e.Data, stale, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("fills = %d", calls.Load())
	}
}

func TestGetOrFillStaleServesExpiredAndRevalidates(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	defer c.Close()
	var calls atomic.Int32
	if _, _, err := c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v1", &calls)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute) // expired, inside the stale window

	refreshed := make(chan struct{})
	e, stale, err := c.GetOrFillStale("k", time.Minute, time.Hour, func() (Entry, error) {
		defer close(refreshed)
		calls.Add(1)
		return Entry{Data: []byte("v2")}, nil
	})
	if err != nil || !stale || string(e.Data) != "v1" {
		t.Fatalf("stale serve = %q stale=%v err=%v", e.Data, stale, err)
	}
	select {
	case <-refreshed:
	case <-time.After(5 * time.Second):
		t.Fatal("background refresh never ran")
	}
	c.Close() // drain the refresh goroutine's insert
	e, stale, err = c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v3", &calls))
	if err != nil || stale || string(e.Data) != "v2" {
		t.Fatalf("after refresh = %q stale=%v err=%v", e.Data, stale, err)
	}
	if got := c.Stats().StaleServes; got != 1 {
		t.Fatalf("stale serves = %d", got)
	}
}

func TestGetOrFillStaleRefreshFailureKeepsStale(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	var calls atomic.Int32
	if _, _, err := c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v1", &calls)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	e, stale, err := c.GetOrFillStale("k", time.Minute, time.Hour, func() (Entry, error) {
		return Entry{}, errors.New("origin down")
	})
	if err != nil || !stale || string(e.Data) != "v1" {
		t.Fatalf("stale serve = %q stale=%v err=%v", e.Data, stale, err)
	}
	c.Close() // wait for the failed refresh to finish
	// Still servable stale: the failed refresh must not evict, and the
	// cleared refreshing flag must allow another revalidation attempt.
	e, stale, err = c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v2", &calls))
	if err != nil || !stale || string(e.Data) != "v1" {
		t.Fatalf("second stale serve = %q stale=%v err=%v", e.Data, stale, err)
	}
}

func TestGetOrFillStaleBeyondWindowBlocks(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	defer c.Close()
	var calls atomic.Int32
	if _, _, err := c.GetOrFillStale("k", time.Minute, time.Minute, fillWith("v1", &calls)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Minute) // beyond expires+staleFor
	e, stale, err := c.GetOrFillStale("k", time.Minute, time.Minute, fillWith("v2", &calls))
	if err != nil || stale || string(e.Data) != "v2" {
		t.Fatalf("beyond window = %q stale=%v err=%v", e.Data, stale, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("fills = %d", calls.Load())
	}
}

func TestGetOrFillStaleZeroWindowIsGetOrFill(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	defer c.Close()
	var calls atomic.Int32
	if _, stale, err := c.GetOrFillStale("k", time.Minute, 0, fillWith("v1", &calls)); err != nil || stale {
		t.Fatalf("stale=%v err=%v", stale, err)
	}
	clock.Advance(2 * time.Minute)
	e, stale, err := c.GetOrFillStale("k", time.Minute, 0, fillWith("v2", &calls))
	if err != nil || stale || string(e.Data) != "v2" {
		t.Fatalf("expired with no window = %q stale=%v err=%v", e.Data, stale, err)
	}
}

func TestSweepKeepsStaleWindow(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	defer c.Close()
	if _, _, err := c.GetOrFillStale("k", time.Minute, time.Hour, fillWith("v1", nil)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Minute) // expired, stale window open
	if n := c.Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d entries inside the stale window", n)
	}
	clock.Advance(2 * time.Hour) // window closed
	if n := c.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
}

// TestGetOrFillStaleConcurrent is the -race stress test: many goroutines
// hammer an expiring key while the clock advances; every read must get
// a value, the background refresh must stay single-flight per window,
// and nothing may deadlock.
func TestGetOrFillStaleConcurrent(t *testing.T) {
	clock := newSWRClock()
	c := NewWithClock(clock.Now)
	var fills atomic.Int32
	fill := func() (Entry, error) {
		n := fills.Add(1)
		return Entry{Data: []byte(fmt.Sprintf("v%d", n))}, nil
	}
	if _, _, err := c.GetOrFillStale("k", time.Minute, time.Hour, fill); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(goroutines + 1)
	stop := make(chan struct{})
	go func() { // clock mover: keeps flipping the entry between fresh and stale
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			clock.Advance(45 * time.Second)
			time.Sleep(50 * time.Microsecond)
		}
		close(stop)
	}()
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, _, err := c.GetOrFillStale("k", time.Minute, time.Hour, fill)
				if err != nil {
					t.Errorf("GetOrFillStale: %v", err)
					return
				}
				if len(e.Data) == 0 {
					t.Error("empty entry served")
					return
				}
			}
		}()
	}
	wg.Wait()
	c.Close()
	if fills.Load() == 0 {
		t.Fatal("no fills ran")
	}
}
