package cache

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// sameShardKeys returns n distinct keys that all hash onto one shard,
// so LRU ordering is deterministic under the per-shard budget.
func sameShardKeys(t *testing.T, n int) []string {
	t.Helper()
	c := New()
	want := c.shardFor("seed")
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == want {
			keys = append(keys, k)
		}
		if i > 1_000_000 {
			t.Fatal("could not find enough same-shard keys")
		}
	}
	return keys
}

func TestLRUEvictsOverByteBudget(t *testing.T) {
	entry := Entry{Data: make([]byte, 1000)}
	// Budget admits ~3 same-shard entries (per-shard budget is
	// MaxBytes/numShards).
	c := NewWithOptions(Options{MaxBytes: int64(numShards) * 3500})
	keys := sameShardKeys(t, 4)
	for _, k := range keys[:3] {
		c.Put(k, entry, time.Hour)
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("budget not exceeded yet; nothing should be evicted")
	}
	c.Put(keys[3], entry, time.Hour)
	// keys[0] was touched most recently via Get, so keys[1] is LRU.
	if _, ok := c.Get(keys[1]); ok {
		t.Error("least-recently-used entry should have been evicted")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently touched entry should survive eviction")
	}
	if _, ok := c.Get(keys[3]); !ok {
		t.Error("newest entry should survive eviction")
	}
	if got := c.Stats().Evictions; got == 0 {
		t.Error("evictions counter should have advanced")
	}
}

func TestByteAccounting(t *testing.T) {
	c := NewWithOptions(Options{MaxBytes: 1 << 20})
	c.Put("a", Entry{Data: make([]byte, 100)}, time.Hour)
	c.Put("b", Entry{Data: make([]byte, 200), MIME: "image/png"}, time.Hour)
	want := int64(100+slotOverhead) + int64(200+len("image/png")+slotOverhead)
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	c.Delete("a")
	want -= int64(100 + slotOverhead)
	if got := c.Bytes(); got != want {
		t.Fatalf("after delete Bytes() = %d, want %d", got, want)
	}
	// Overwriting must not double-count.
	c.Put("b", Entry{Data: make([]byte, 50)}, time.Hour)
	want = int64(50 + slotOverhead)
	if got := c.Bytes(); got != want {
		t.Fatalf("after overwrite Bytes() = %d, want %d", got, want)
	}
	c.Purge()
	if got := c.Bytes(); got != 0 {
		t.Fatalf("after purge Bytes() = %d, want 0", got)
	}
}

// TestErroredFillLeavesNoSlot is the regression test for the
// errored-slot leak: a failed GetOrFill with no waiters must not leave
// a dead slot behind (it used to linger in the map, inflating Len and
// the msite_cache_entries gauge, until the key was touched again).
func TestErroredFillLeavesNoSlot(t *testing.T) {
	c := New()
	boom := errors.New("render failed")
	if _, err := c.GetOrFill("k", time.Hour, func() (Entry, error) {
		return Entry{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len() = %d after failed fill, want 0 (errored slot leaked)", got)
	}
	if got := c.Bytes(); got != 0 {
		t.Fatalf("Bytes() = %d after failed fill, want 0", got)
	}
}

func TestGetOrFillRespectsBudget(t *testing.T) {
	c := NewWithOptions(Options{MaxBytes: int64(numShards) * 2500})
	keys := sameShardKeys(t, 3)
	for _, k := range keys {
		if _, err := c.GetOrFill(k, time.Hour, func() (Entry, error) {
			return Entry{Data: make([]byte, 1000)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Budget fits 2 entries; the first-filled key is LRU and must go.
	if _, ok := c.Get(keys[0]); ok {
		t.Error("oldest filled entry should have been evicted")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Error("newest filled entry should be resident")
	}
}

func TestBackgroundSweeperAndClose(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	c := NewWithOptions(Options{Clock: clk.Now, SweepInterval: 5 * time.Millisecond})
	defer c.Close()
	c.Put("short", Entry{Data: []byte("x")}, time.Minute)
	c.Put("long", Entry{Data: []byte("y")}, time.Hour)
	clk.Advance(10 * time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("sweeper left Len() = %d, want 1", got)
	}
	if _, ok := c.Get("long"); !ok {
		t.Fatal("unexpired entry swept")
	}
	c.Close()
	c.Close() // idempotent
}

func TestShardDistribution(t *testing.T) {
	c := New()
	seen := make(map[*shard]int)
	for i := 0; i < 10_000; i++ {
		seen[c.shardFor(fmt.Sprintf("key-%d", i))]++
	}
	if len(seen) != numShards {
		t.Fatalf("keys landed on %d shards, want %d", len(seen), numShards)
	}
	for sh, n := range seen {
		if n < 100 {
			t.Errorf("shard %p badly underloaded: %d keys", sh, n)
		}
	}
}
