// Package cache implements the server-side render cache of m.Site (§3.3
// "Object caching"): TTL-bounded entries shared across sessions so that
// one pre-render is amortized over thousands of clients, with
// single-flight filling so concurrent requests for a cold key trigger
// exactly one render.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/obs"
)

// Entry is one cached artifact.
type Entry struct {
	Data []byte
	MIME string
}

// Cache is a TTL key-value cache, safe for concurrent use. The zero
// value is not usable; call New.
type Cache struct {
	clock func() time.Time

	// Counters are atomic so Stats() snapshots (and metric scrapes)
	// never contend with the serving hot path.
	hits   atomic.Uint64
	misses atomic.Uint64
	fills  atomic.Uint64

	// obsHook is set once by SetObs before serving begins.
	obsHook atomic.Pointer[cacheObs]

	mu      sync.Mutex
	entries map[string]*slot
}

// cacheObs bundles the registry metrics the cache reports into.
type cacheObs struct {
	hits        *obs.Counter
	misses      *obs.Counter
	fills       *obs.Counter
	fillSeconds *obs.Histogram
}

// SetObs registers the cache's counters and fill-latency histogram on
// reg (msite_cache_hits_total, msite_cache_misses_total,
// msite_cache_fills_total, msite_cache_fill_seconds) and starts
// reporting into them. Safe to call while serving; typically wired once
// by core.New.
func (c *Cache) SetObs(reg *obs.Registry) {
	c.obsHook.Store(&cacheObs{
		hits:        reg.Counter("msite_cache_hits_total"),
		misses:      reg.Counter("msite_cache_misses_total"),
		fills:       reg.Counter("msite_cache_fills_total"),
		fillSeconds: reg.Histogram("msite_cache_fill_seconds"),
	})
	reg.GaugeFunc("msite_cache_entries", func() float64 { return float64(c.Len()) })
}

func (c *Cache) markHit() {
	c.hits.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.hits.Inc()
	}
}

func (c *Cache) markMiss() {
	c.misses.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.misses.Inc()
	}
}

func (c *Cache) markFill(d time.Duration) {
	c.fills.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.fills.Inc()
		o.fillSeconds.ObserveDuration(d)
	}
}

type slot struct {
	entry   Entry
	expires time.Time

	// pending coordinates single-flight fills: non-nil while a fill is in
	// progress; waiters block on the channel.
	pending chan struct{}
	fillErr error
}

// New returns an empty cache using the real clock.
func New() *Cache {
	return NewWithClock(time.Now)
}

// NewWithClock returns a cache with an injectable clock, for tests and
// deterministic simulation.
func NewWithClock(clock func() time.Time) *Cache {
	return &Cache{clock: clock, entries: make(map[string]*slot)}
}

// Get returns the entry for key if present and unexpired.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.entries[key]
	if !ok || s.pending != nil || c.clock().After(s.expires) {
		c.markMiss()
		return Entry{}, false
	}
	c.markHit()
	return s.entry, true
}

// Put stores an entry with the given time-to-live. A non-positive ttl
// stores nothing (the attribute system uses ttl<=0 to mean "uncacheable").
func (c *Cache) Put(key string, e Entry, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = &slot{entry: e, expires: c.clock().Add(ttl)}
}

// GetOrFill returns the cached entry, or runs fill exactly once across
// concurrent callers and caches its result for ttl. A fill error is
// returned to every waiter and nothing is cached. With ttl <= 0 the fill
// result is returned but not stored.
func (c *Cache) GetOrFill(key string, ttl time.Duration, fill func() (Entry, error)) (Entry, error) {
	for {
		c.mu.Lock()
		s, ok := c.entries[key]
		if ok && s.pending == nil && !c.clock().After(s.expires) {
			c.markHit()
			entry := s.entry
			c.mu.Unlock()
			return entry, nil
		}
		if ok && s.pending != nil {
			// Another goroutine is filling: wait and re-check.
			waitCh := s.pending
			c.mu.Unlock()
			<-waitCh
			c.mu.Lock()
			s2, ok2 := c.entries[key]
			if ok2 && s2.pending == nil && !c.clock().After(s2.expires) {
				c.markHit()
				entry := s2.entry
				c.mu.Unlock()
				return entry, nil
			}
			// Fill failed or entry already expired: retry from scratch,
			// propagating a failure if one was recorded.
			if ok2 && s2.fillErr != nil {
				err := s2.fillErr
				delete(c.entries, key)
				c.mu.Unlock()
				return Entry{}, err
			}
			c.mu.Unlock()
			continue
		}
		// We are the filler.
		c.markMiss()
		pend := &slot{pending: make(chan struct{})}
		c.entries[key] = pend
		c.mu.Unlock()

		fillStart := time.Now()
		entry, err := fill()
		c.markFill(time.Since(fillStart))

		c.mu.Lock()
		if err != nil {
			pend.fillErr = err
			close(pend.pending)
			// Leave the errored slot momentarily so current waiters see
			// the error; it is deleted by the first waiter or replaced by
			// the next fill.
			pend.pending = nil
			c.mu.Unlock()
			return Entry{}, err
		}
		if ttl > 0 {
			c.entries[key] = &slot{entry: entry, expires: c.clock().Add(ttl)}
		} else {
			delete(c.entries, key)
		}
		close(pend.pending)
		c.mu.Unlock()
		return entry, nil
	}
}

// Delete removes a key.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// Purge removes every entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*slot)
}

// Sweep removes expired entries and returns how many were evicted.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	n := 0
	for k, s := range c.entries {
		if s.pending == nil && now.After(s.expires) {
			delete(c.entries, k)
			n++
		}
	}
	return n
}

// Len returns the number of stored entries (including expired ones not
// yet swept).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits   uint64
	Misses uint64
	Fills  uint64
}

// Stats returns a snapshot of the counters without taking the cache
// lock (the counters are atomic).
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Fills: c.fills.Load()}
}
