// Package cache implements the server-side render cache of m.Site (§3.3
// "Object caching"): TTL-bounded entries shared across sessions so that
// one pre-render is amortized over thousands of clients, with
// single-flight filling so concurrent requests for a cold key trigger
// exactly one render.
//
// The cache is sharded: keys hash (FNV-1a) onto 32 independent shards,
// each with its own lock, entry map, single-flight table, and LRU list,
// so concurrent sessions on a multi-core proxy never funnel through one
// mutex. An optional byte budget (MaxBytes) evicts least-recently-used
// entries, and an optional background sweeper collects expired entries
// between requests; Close stops it.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/obs"
)

// numShards is the shard count. A power of two keeps the index a mask;
// 32 is far above any realistic core count, so two hot keys rarely
// share a lock.
const numShards = 32

// slotOverhead approximates the per-entry bookkeeping bytes charged
// against MaxBytes on top of the payload itself.
const slotOverhead = 128

// Entry is one cached artifact.
type Entry struct {
	Data []byte
	MIME string
}

func (e Entry) size() int64 {
	return int64(len(e.Data)) + int64(len(e.MIME)) + slotOverhead
}

// Options configures a cache beyond the defaults.
type Options struct {
	// Clock is the time source (tests inject a fake one). Nil uses
	// time.Now.
	Clock func() time.Time
	// MaxBytes bounds the resident payload bytes (the -cache-max-bytes
	// knob). When the budget is exceeded the least-recently-used
	// entries are evicted. 0 means unbounded (TTL-only), matching the
	// pre-LRU behaviour.
	MaxBytes int64
	// SweepInterval, when positive, starts a background goroutine that
	// sweeps expired entries on that period. Stop it with Close.
	SweepInterval time.Duration
}

// Cache is a sharded TTL+LRU key-value cache, safe for concurrent use.
// The zero value is not usable; call New, NewWithClock, or
// NewWithOptions.
type Cache struct {
	clock    func() time.Time
	maxBytes int64 // per-shard budget is maxBytes/numShards

	// Counters are atomic so Stats() snapshots (and metric scrapes)
	// never contend with the serving hot path.
	hits        atomic.Uint64
	misses      atomic.Uint64
	fills       atomic.Uint64
	evictions   atomic.Uint64
	staleServes atomic.Uint64
	bytes       atomic.Int64

	// obsHook is set once by SetObs before serving begins.
	obsHook atomic.Pointer[cacheObs]

	shards [numShards]shard

	// refreshWG tracks in-flight stale-while-revalidate background
	// refreshes so Close can drain them.
	refreshWG sync.WaitGroup

	sweepStop chan struct{}
	sweepDone chan struct{}
	closeOnce sync.Once
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu      sync.Mutex
	entries map[string]*slot
	// lruHead/lruTail form the intrusive recency list of resident
	// (filled, unexpired-or-not-yet-swept) slots; head is most recent.
	lruHead *slot
	lruTail *slot
	bytes   int64
}

// slot is one cache slot: either resident (entry valid, on the LRU
// list) or pending (a single-flight fill in progress; waiters block on
// the channel). After the pending channel closes, entry/fillErr are
// immutable and readable without the shard lock.
type slot struct {
	key     string
	entry   Entry
	expires time.Time
	// staleUntil extends residency past expires for
	// stale-while-revalidate serving; at or before expires for entries
	// stored without a stale window.
	staleUntil time.Time
	size       int64

	pending chan struct{}
	fillErr error
	// refreshing marks a single-flight background revalidation in
	// progress while the (stale) entry keeps being served.
	refreshing bool

	prev, next *slot // LRU links, only while resident
}

// residencyLimit is when the slot stops being servable at all (the
// later of expires and staleUntil).
func (s *slot) residencyLimit() time.Time {
	if s.staleUntil.After(s.expires) {
		return s.staleUntil
	}
	return s.expires
}

// cacheObs bundles the registry metrics the cache reports into.
type cacheObs struct {
	hits        *obs.Counter
	misses      *obs.Counter
	fills       *obs.Counter
	evictLRU    *obs.Counter
	evictExpire *obs.Counter
	staleServes *obs.Counter
	refreshErrs *obs.Counter
	fillSeconds *obs.Histogram
}

// New returns an empty unbounded cache using the real clock.
func New() *Cache {
	return NewWithOptions(Options{})
}

// NewWithClock returns an unbounded cache with an injectable clock, for
// tests and deterministic simulation.
func NewWithClock(clock func() time.Time) *Cache {
	return NewWithOptions(Options{Clock: clock})
}

// NewWithOptions returns a cache configured by o. When o.SweepInterval
// is positive the caller owns the sweeper and must Close the cache.
func NewWithOptions(o Options) *Cache {
	clock := o.Clock
	if clock == nil {
		clock = time.Now
	}
	c := &Cache{clock: clock, maxBytes: o.MaxBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*slot)
	}
	if o.SweepInterval > 0 {
		c.sweepStop = make(chan struct{})
		c.sweepDone = make(chan struct{})
		go c.sweepLoop(o.SweepInterval)
	}
	return c
}

// Close stops the background sweeper, if one was started, and drains
// any in-flight stale-while-revalidate refreshes. Idempotent; the cache
// remains usable afterwards (just unswept).
func (c *Cache) Close() {
	c.closeOnce.Do(func() {
		if c.sweepStop != nil {
			close(c.sweepStop)
			<-c.sweepDone
		}
		c.refreshWG.Wait()
	})
}

func (c *Cache) sweepLoop(every time.Duration) {
	defer close(c.sweepDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-ticker.C:
			c.Sweep()
		}
	}
}

// SetObs registers the cache's counters, gauges, and fill-latency
// histogram on reg (msite_cache_hits_total, msite_cache_misses_total,
// msite_cache_fills_total, msite_cache_evictions_total{reason},
// msite_cache_entries, msite_cache_bytes, msite_cache_fill_seconds) and
// starts reporting into them. Safe to call while serving; typically
// wired once by core.New.
func (c *Cache) SetObs(reg *obs.Registry) {
	c.obsHook.Store(&cacheObs{
		hits:        reg.Counter("msite_cache_hits_total"),
		misses:      reg.Counter("msite_cache_misses_total"),
		fills:       reg.Counter("msite_cache_fills_total"),
		evictLRU:    reg.Counter("msite_cache_evictions_total", "reason", "lru"),
		evictExpire: reg.Counter("msite_cache_evictions_total", "reason", "expired"),
		staleServes: reg.Counter("msite_cache_stale_serves_total"),
		refreshErrs: reg.Counter("msite_cache_refresh_errors_total"),
		fillSeconds: reg.Histogram("msite_cache_fill_seconds"),
	})
	reg.GaugeFunc("msite_cache_entries", func() float64 { return float64(c.Len()) })
	reg.GaugeFunc("msite_cache_bytes", func() float64 { return float64(c.bytes.Load()) })
}

func (c *Cache) markHit() {
	c.hits.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.hits.Inc()
	}
}

func (c *Cache) markMiss() {
	c.misses.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.misses.Inc()
	}
}

func (c *Cache) markFill(d time.Duration) {
	c.fills.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.fills.Inc()
		o.fillSeconds.ObserveDuration(d)
	}
}

func (c *Cache) markStale() {
	c.staleServes.Add(1)
	if o := c.obsHook.Load(); o != nil {
		o.staleServes.Inc()
	}
}

func (c *Cache) markRefreshErr() {
	if o := c.obsHook.Load(); o != nil {
		o.refreshErrs.Inc()
	}
}

func (c *Cache) markEvict(expired bool) {
	c.evictions.Add(1)
	if o := c.obsHook.Load(); o != nil {
		if expired {
			o.evictExpire.Inc()
		} else {
			o.evictLRU.Inc()
		}
	}
}

// shardFor hashes key (FNV-1a, 32-bit) onto its shard.
func (c *Cache) shardFor(key string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h&(numShards-1)]
}

// --- intrusive LRU list (caller holds sh.mu) ---

func (sh *shard) lruPushFront(s *slot) {
	s.prev = nil
	s.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = s
	}
	sh.lruHead = s
	if sh.lruTail == nil {
		sh.lruTail = s
	}
}

func (sh *shard) lruRemove(s *slot) {
	if s.prev != nil {
		s.prev.next = s.next
	} else if sh.lruHead == s {
		sh.lruHead = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else if sh.lruTail == s {
		sh.lruTail = s.prev
	}
	s.prev, s.next = nil, nil
}

func (sh *shard) lruTouch(s *slot) {
	if sh.lruHead == s {
		return
	}
	sh.lruRemove(s)
	sh.lruPushFront(s)
}

// insertResident makes s the resident slot for its key, accounting
// bytes and evicting over-budget LRU entries. Caller holds sh.mu.
func (c *Cache) insertResident(sh *shard, s *slot) {
	if old, ok := sh.entries[s.key]; ok && old.pending == nil {
		sh.removeResident(c, old)
	}
	sh.entries[s.key] = s
	sh.lruPushFront(s)
	sh.bytes += s.size
	c.bytes.Add(s.size)
	c.evictOverBudget(sh)
}

// removeResident drops a resident slot from the map, the LRU list, and
// the byte accounting. Caller holds sh.mu.
func (sh *shard) removeResident(c *Cache, s *slot) {
	delete(sh.entries, s.key)
	sh.lruRemove(s)
	sh.bytes -= s.size
	c.bytes.Add(-s.size)
}

// evictOverBudget evicts least-recently-used resident entries until the
// shard is within its slice of MaxBytes. Caller holds sh.mu.
func (c *Cache) evictOverBudget(sh *shard) {
	if c.maxBytes <= 0 {
		return
	}
	budget := c.maxBytes / numShards
	if budget < 1 {
		budget = 1
	}
	for sh.bytes > budget && sh.lruTail != nil {
		victim := sh.lruTail
		sh.removeResident(c, victim)
		c.markEvict(false)
	}
}

// Get returns the entry for key if present and unexpired.
func (c *Cache) Get(key string) (Entry, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[key]
	if !ok || s.pending != nil || c.clock().After(s.expires) {
		c.markMiss()
		return Entry{}, false
	}
	sh.lruTouch(s)
	c.markHit()
	return s.entry, true
}

// Put stores an entry with the given time-to-live. A non-positive ttl
// stores nothing (the attribute system uses ttl<=0 to mean "uncacheable").
func (c *Cache) Put(key string, e Entry, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	sh := c.shardFor(key)
	s := &slot{key: key, entry: e, expires: c.clock().Add(ttl), size: e.size()}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.entries[key]; ok && old.pending != nil {
		// A fill is in flight for this key; let it finish (its waiters
		// hold its slot pointer) and overwrite the map entry directly.
		delete(sh.entries, key)
	}
	c.insertResident(sh, s)
}

// Touch extends the residency of key's live entry to ttl from now
// without replacing its bytes — the cheap path for "still fresh"
// revalidations. Returns false when the key is absent, expired, or
// mid-fill, or when ttl is non-positive.
func (c *Cache) Touch(key string, ttl time.Duration) bool {
	if ttl <= 0 {
		return false
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[key]
	if !ok || s.pending != nil || c.clock().After(s.expires) {
		return false
	}
	s.expires = c.clock().Add(ttl)
	sh.lruTouch(s)
	return true
}

// GetOrFill returns the cached entry, or runs fill exactly once across
// concurrent callers and caches its result for ttl. A fill error is
// returned to every waiter and the slot is released eagerly — a failed
// fill leaves nothing behind. With ttl <= 0 the fill result is returned
// but not stored.
func (c *Cache) GetOrFill(key string, ttl time.Duration, fill func() (Entry, error)) (Entry, error) {
	return c.getOrFill(key, ttl, 0, fill)
}

// GetOrFillStale is GetOrFill with stale-while-revalidate: an entry
// expired for no more than staleFor is returned immediately (stale =
// true) while a single-flight background refresh revalidates it, so one
// slow or failing fill never blocks the serving path. A failed refresh
// keeps the stale entry servable until the window closes; only entries
// expired beyond staleFor (or absent) block on a foreground fill.
func (c *Cache) GetOrFillStale(key string, ttl, staleFor time.Duration, fill func() (Entry, error)) (Entry, bool, error) {
	if staleFor > 0 {
		sh := c.shardFor(key)
		sh.mu.Lock()
		if s, ok := sh.entries[key]; ok && s.pending == nil {
			now := c.clock()
			if now.After(s.expires) && !now.After(s.staleUntil) {
				entry := s.entry
				launch := !s.refreshing
				s.refreshing = true
				sh.lruTouch(s)
				c.markStale()
				sh.mu.Unlock()
				if launch {
					c.refreshWG.Add(1)
					go c.refresh(key, ttl, staleFor, fill)
				}
				return entry, true, nil
			}
		}
		sh.mu.Unlock()
	}
	entry, err := c.getOrFill(key, ttl, staleFor, fill)
	return entry, false, err
}

// refresh is the background revalidation of one stale key: it runs
// fill off the serving path and swaps the result in, leaving the stale
// entry in place if the fill fails.
func (c *Cache) refresh(key string, ttl, staleFor time.Duration, fill func() (Entry, error)) {
	defer c.refreshWG.Done()
	start := time.Now()
	entry, err := fill()
	sh := c.shardFor(key)
	sh.mu.Lock()
	if s, ok := sh.entries[key]; ok && s.pending == nil {
		s.refreshing = false
	}
	if err != nil {
		sh.mu.Unlock()
		c.markRefreshErr()
		return
	}
	c.markFill(time.Since(start))
	if s, ok := sh.entries[key]; ok && s.pending != nil {
		// A foreground single-flight fill is racing (the stale window
		// closed); its result wins, drop ours.
		sh.mu.Unlock()
		return
	}
	now := c.clock()
	ns := &slot{
		key:        key,
		entry:      entry,
		expires:    now.Add(ttl),
		staleUntil: now.Add(ttl + staleFor),
		size:       entry.size(),
	}
	c.insertResident(sh, ns)
	sh.mu.Unlock()
}

// getOrFill is the single-flight fill shared by GetOrFill and the
// stale-miss path; staleFor widens the stored entry's residency window.
func (c *Cache) getOrFill(key string, ttl, staleFor time.Duration, fill func() (Entry, error)) (Entry, error) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if s, ok := sh.entries[key]; ok {
		if s.pending == nil && !c.clock().After(s.expires) {
			sh.lruTouch(s)
			c.markHit()
			entry := s.entry
			sh.mu.Unlock()
			return entry, nil
		}
		if s.pending != nil {
			// Another goroutine is filling: wait on its slot. The
			// filler publishes entry/fillErr before closing the
			// channel, so no re-lookup (and no re-fill loop) is needed.
			wait := s.pending
			sh.mu.Unlock()
			<-wait
			if s.fillErr != nil {
				return Entry{}, s.fillErr
			}
			c.markHit()
			return s.entry, nil
		}
		// Expired resident entry: drop it and refill below.
		sh.removeResident(c, s)
		c.markEvict(true)
	}
	// We are the filler.
	c.markMiss()
	pend := &slot{key: key, pending: make(chan struct{})}
	sh.entries[key] = pend
	sh.mu.Unlock()

	fillStart := time.Now()
	entry, err := fill()
	c.markFill(time.Since(fillStart))

	done := pend.pending
	sh.mu.Lock()
	if err != nil {
		pend.fillErr = err
		// Eagerly release the errored slot: waiters carry the slot
		// pointer, so nothing dead lingers in the map (previously a
		// failed fill with no waiters leaked its slot until the next
		// touch of the key).
		if sh.entries[key] == pend {
			delete(sh.entries, key)
		}
		sh.mu.Unlock()
		close(done)
		return Entry{}, err
	}
	pend.entry = entry
	pend.size = entry.size()
	if ttl > 0 && sh.entries[key] == pend {
		// Transition pending -> resident (unless Delete/Purge removed
		// the key mid-fill, in which case the result is returned but
		// not cached).
		pend.expires = c.clock().Add(ttl)
		pend.staleUntil = pend.expires.Add(staleFor)
		pend.pending = nil
		delete(sh.entries, key)
		c.insertResident(sh, pend)
	} else if sh.entries[key] == pend {
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	close(done)
	return entry, nil
}

// Delete removes a key.
func (c *Cache) Delete(key string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.entries[key]
	if !ok {
		return
	}
	if s.pending != nil {
		delete(sh.entries, key)
		return
	}
	sh.removeResident(c, s)
}

// Purge removes every entry.
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, s := range sh.entries {
			if s.pending == nil {
				c.bytes.Add(-s.size)
			}
		}
		sh.entries = make(map[string]*slot)
		sh.lruHead, sh.lruTail = nil, nil
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// Sweep removes expired entries and returns how many were evicted.
// Entries inside a stale-while-revalidate window survive until the
// window closes. The background sweeper (Options.SweepInterval) calls
// this on its tick.
func (c *Cache) Sweep() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		now := c.clock()
		for _, s := range sh.entries {
			if s.pending == nil && now.After(s.residencyLimit()) {
				sh.removeResident(c, s)
				c.markEvict(true)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of stored entries (including expired ones not
// yet swept).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the resident payload bytes currently accounted against
// MaxBytes.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Evictions uint64
	// StaleServes counts entries served past expiry while a background
	// revalidation ran (stale-while-revalidate).
	StaleServes uint64
	Bytes       int64
}

// Stats returns a snapshot of the counters without taking any shard
// lock (the counters are atomic).
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Fills:       c.fills.Load(),
		Evictions:   c.evictions.Load(),
		StaleServes: c.staleServes.Load(),
		Bytes:       c.bytes.Load(),
	}
}
