package cache

import (
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/obs"
)

// Layer is the cache surface the serving stack threads around: the
// in-memory *Cache, or a *Tiered that backs it with a durable store.
// Proxy, AJAX dispatcher, and core accept a Layer so persistence is a
// wiring decision, not a code path.
type Layer interface {
	Get(key string) (Entry, bool)
	Put(key string, e Entry, ttl time.Duration)
	Touch(key string, ttl time.Duration) bool
	Delete(key string)
	Purge()
	GetOrFill(key string, ttl time.Duration, fill func() (Entry, error)) (Entry, error)
	GetOrFillStale(key string, ttl, staleFor time.Duration, fill func() (Entry, error)) (Entry, bool, error)
	Stats() Stats
	Len() int
	Bytes() int64
	SetObs(reg *obs.Registry)
	Close()
}

var (
	_ Layer = (*Cache)(nil)
	_ Layer = (*Tiered)(nil)
)

// SecondTier is the durable layer under a Tiered cache. internal/store
// implements it; tests substitute fakes (including stalled ones).
type SecondTier interface {
	// Get returns the blob for key if present and unexpired; a zero
	// expires means the record does not expire.
	Get(key string) (data []byte, mime string, expires time.Time, ok bool)
	Put(key string, data []byte, mime string, ttl time.Duration) error
	Delete(key string) error
}

// Toucher is the optional expiry-extension surface of a SecondTier;
// when present, Tiered.Touch propagates TTL bumps to the durable layer
// instead of leaving its records to expire on the original schedule.
type Toucher interface {
	Touch(key string, ttl time.Duration) bool
}

// KeyLister is the optional iteration surface of a SecondTier; when
// present, Rehydrate can preload the L1 with the most recently used
// durable records.
type KeyLister interface {
	// Keys returns live keys, most recently accessed first.
	Keys() []string
}

// DefaultTieredWriters is the default size of the async write-through
// pool.
const DefaultTieredWriters = 2

// DefaultTieredQueueLen is the default bound on queued write-throughs;
// past it writes are dropped (and counted), never blocked on.
const DefaultTieredQueueLen = 256

// DefaultPromoteTTL is the L1 residency granted to a durable record that
// carries no expiry of its own.
const DefaultPromoteTTL = 5 * time.Minute

// TieredOptions configures the write-through machinery.
type TieredOptions struct {
	// Writers is the async write-through pool size (default
	// DefaultTieredWriters).
	Writers int
	// QueueLen bounds the queued write-throughs (default
	// DefaultTieredQueueLen). A full queue drops the write and counts it
	// in msite_store_write_drops_total — the serving path never blocks
	// on the store.
	QueueLen int
	// PromoteTTL is the L1 ttl granted to durable records without an
	// expiry (default DefaultPromoteTTL).
	PromoteTTL time.Duration
}

// writeOp is one queued asynchronous store mutation.
type writeOp struct {
	del   bool
	touch bool
	key   string
	data  []byte
	mime  string
	ttl   time.Duration
}

// Tiered layers a durable SecondTier under an in-memory Cache. Reads
// miss through to the store (promoting hits into L1); fills and puts
// write through asynchronously via a bounded writer pool so the serving
// path never waits on disk.
type Tiered struct {
	*Cache
	tier       SecondTier
	promoteTTL time.Duration

	queue   chan writeOp
	sendMu  sync.RWMutex // guards queue sends against Close
	closed  bool
	wg      sync.WaitGroup
	pending atomic.Int64

	writeDrops atomic.Uint64
	obsDrops   atomic.Pointer[obs.Counter]

	closeOnce sync.Once
}

// NewTiered wraps l1 with the durable tier. The caller retains ownership
// of both: Close stops the writers and closes l1, but not the tier.
func NewTiered(l1 *Cache, tier SecondTier, o TieredOptions) *Tiered {
	writers := o.Writers
	if writers <= 0 {
		writers = DefaultTieredWriters
	}
	queueLen := o.QueueLen
	if queueLen <= 0 {
		queueLen = DefaultTieredQueueLen
	}
	promote := o.PromoteTTL
	if promote <= 0 {
		promote = DefaultPromoteTTL
	}
	t := &Tiered{
		Cache:      l1,
		tier:       tier,
		promoteTTL: promote,
		queue:      make(chan writeOp, queueLen),
	}
	t.wg.Add(writers)
	for i := 0; i < writers; i++ {
		go t.writer()
	}
	return t
}

func (t *Tiered) writer() {
	defer t.wg.Done()
	for op := range t.queue {
		switch {
		case op.del:
			_ = t.tier.Delete(op.key)
		case op.touch:
			if toucher, ok := t.tier.(Toucher); ok {
				toucher.Touch(op.key, op.ttl)
			}
		default:
			_ = t.tier.Put(op.key, op.data, op.mime, op.ttl)
		}
		t.pending.Add(-1)
	}
}

// enqueue hands op to the writer pool without ever blocking: a full
// queue (stalled or slow disk) drops the write and counts it.
func (t *Tiered) enqueue(op writeOp) {
	t.sendMu.RLock()
	defer t.sendMu.RUnlock()
	if t.closed {
		return
	}
	select {
	case t.queue <- op:
		t.pending.Add(1)
	default:
		t.writeDrops.Add(1)
		if c := t.obsDrops.Load(); c != nil {
			c.Inc()
		}
	}
}

// Get checks L1, then the durable tier; a tier hit is promoted into L1
// with its remaining lifetime.
func (t *Tiered) Get(key string) (Entry, bool) {
	if e, ok := t.Cache.Get(key); ok {
		return e, true
	}
	data, mime, expires, ok := t.tier.Get(key)
	if !ok {
		return Entry{}, false
	}
	e := Entry{Data: data, MIME: mime}
	t.Cache.Put(key, e, t.remainingTTL(expires))
	return e, true
}

// remainingTTL converts a tier record's expiry into an L1 ttl.
func (t *Tiered) remainingTTL(expires time.Time) time.Duration {
	if expires.IsZero() {
		return t.promoteTTL
	}
	return expires.Sub(t.clock())
}

// Put stores in L1 and writes through asynchronously. The tier keeps
// cacheable artifacts only, so the same ttl<=0 short-circuit applies.
func (t *Tiered) Put(key string, e Entry, ttl time.Duration) {
	t.Cache.Put(key, e, ttl)
	if ttl > 0 {
		t.enqueue(writeOp{key: key, data: e.Data, mime: e.MIME, ttl: ttl})
	}
}

// Touch extends the key's residency in both tiers (the tier touch is
// async, and skipped when the tier cannot touch). Returns whether the
// L1 entry was live.
func (t *Tiered) Touch(key string, ttl time.Duration) bool {
	ok := t.Cache.Touch(key, ttl)
	if ttl > 0 {
		if _, can := t.tier.(Toucher); can {
			t.enqueue(writeOp{touch: true, key: key, ttl: ttl})
		}
	}
	return ok
}

// Delete removes the key from both tiers (the tier delete is async).
func (t *Tiered) Delete(key string) {
	t.Cache.Delete(key)
	t.enqueue(writeOp{del: true, key: key})
}

// GetOrFill is Cache.GetOrFill with the durable tier consulted before
// the fill runs: inside the single-flight slot a tier hit short-circuits
// the (expensive) fill, and a real fill's result is written through.
func (t *Tiered) GetOrFill(key string, ttl time.Duration, fill func() (Entry, error)) (Entry, error) {
	return t.Cache.GetOrFill(key, ttl, t.wrapFill(key, ttl, fill))
}

// GetOrFillStale is Cache.GetOrFillStale with the same tier fallthrough
// on both the foreground-miss and background-refresh paths.
func (t *Tiered) GetOrFillStale(key string, ttl, staleFor time.Duration, fill func() (Entry, error)) (Entry, bool, error) {
	return t.Cache.GetOrFillStale(key, ttl, staleFor, t.wrapFill(key, ttl, fill))
}

// wrapFill interposes the durable tier between an L1 miss and the fill.
func (t *Tiered) wrapFill(key string, ttl time.Duration, fill func() (Entry, error)) func() (Entry, error) {
	return func() (Entry, error) {
		if data, mime, _, ok := t.tier.Get(key); ok {
			return Entry{Data: data, MIME: mime}, nil
		}
		e, err := fill()
		if err == nil && ttl > 0 {
			t.enqueue(writeOp{key: key, data: e.Data, mime: e.MIME, ttl: ttl})
		}
		return e, err
	}
}

// Rehydrate preloads L1 with the most recently used durable records —
// the warm-restart path. At most maxBytes of payload are loaded (0 uses
// the L1 byte budget; unbounded if that is 0 too). Returns how many
// records were loaded. Reads go through the tier, so they count as
// store hits.
func (t *Tiered) Rehydrate(maxBytes int64) int {
	kl, ok := t.tier.(KeyLister)
	if !ok {
		return 0
	}
	if maxBytes <= 0 {
		maxBytes = t.Cache.maxBytes
	}
	var loaded int64
	n := 0
	for _, key := range kl.Keys() {
		data, mime, expires, ok := t.tier.Get(key)
		if !ok {
			continue
		}
		ttl := t.remainingTTL(expires)
		if ttl <= 0 {
			continue
		}
		t.Cache.Put(key, Entry{Data: data, MIME: mime}, ttl)
		loaded += int64(len(data))
		n++
		if maxBytes > 0 && loaded >= maxBytes {
			break
		}
	}
	return n
}

// WriteDrops returns how many write-throughs were dropped on
// backpressure.
func (t *Tiered) WriteDrops() uint64 { return t.writeDrops.Load() }

// PendingWrites returns the write-throughs queued or in flight.
func (t *Tiered) PendingWrites() int64 { return t.pending.Load() }

// Flush waits until the write-through queue drains or the timeout
// elapses, returning whether it drained. Test and benchmark helper; the
// serving path never calls it.
func (t *Tiered) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for t.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// SetObs registers the L1 metrics plus the write-through drop counter
// and queue-depth gauge. The tier registers its own metrics.
func (t *Tiered) SetObs(reg *obs.Registry) {
	t.Cache.SetObs(reg)
	c := reg.Counter("msite_store_write_drops_total")
	c.Add(t.writeDrops.Load())
	t.obsDrops.Store(c)
	reg.GaugeFunc("msite_store_write_queue", func() float64 { return float64(t.pending.Load()) })
}

// Close drains queued write-throughs, stops the writer pool, and closes
// the L1 cache. Idempotent. The durable tier itself stays open — its
// owner closes it after the last write lands.
func (t *Tiered) Close() {
	t.closeOnce.Do(func() {
		t.sendMu.Lock()
		t.closed = true
		close(t.queue)
		t.sendMu.Unlock()
		t.wg.Wait()
		t.Cache.Close()
	})
}
