package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressShardedCache hammers the sharded cache from many goroutines
// with overlapping keys and every mutating operation at once — the
// -race guard for the shard locks, the single-flight tables, the LRU
// lists, and the byte accounting.
func TestStressShardedCache(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	c := NewWithOptions(Options{
		Clock:    clk.Now,
		MaxBytes: 64 << 10, // small budget: keeps the LRU eviction path hot
	})
	boom := errors.New("fill failed")

	const (
		goroutines = 16
		iters      = 400
		keyspace   = 24 // overlapping keys across every goroutine
	)
	var wg sync.WaitGroup
	var fillErrs, fillOKs atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%keyspace)
				switch i % 7 {
				case 0, 1:
					e, err := c.GetOrFill(key, time.Minute, func() (Entry, error) {
						return Entry{Data: make([]byte, 100+(i%11)*100)}, nil
					})
					if err != nil {
						t.Errorf("GetOrFill: %v", err)
					} else if len(e.Data) == 0 {
						t.Error("GetOrFill returned empty entry")
					} else {
						fillOKs.Add(1)
					}
				case 2:
					// Failing fills exercise the eager errored-slot release.
					if _, err := c.GetOrFill(key, time.Minute, func() (Entry, error) {
						return Entry{}, boom
					}); err != nil && !errors.Is(err, boom) {
						t.Errorf("unexpected error: %v", err)
					} else if err != nil {
						fillErrs.Add(1)
					}
				case 3:
					c.Put(key, Entry{Data: make([]byte, 64)}, time.Minute)
				case 4:
					c.Get(key)
				case 5:
					c.Delete(key)
				case 6:
					if i%50 == 0 {
						clk.Advance(10 * time.Second)
						c.Sweep()
					} else {
						c.Get(key)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if fillOKs.Load() == 0 {
		t.Error("no successful fills — stress mix is broken")
	}
	// Invariant: the byte accounting must reconcile with what is
	// actually resident once everything quiesces.
	c.Purge()
	if got := c.Bytes(); got != 0 {
		t.Fatalf("Bytes() = %d after purge, want 0 (accounting drifted)", got)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len() = %d after purge, want 0", got)
	}
}

// TestStressSingleFlightSameKey focuses every goroutine on ONE key so
// the pending-slot handoff (fill, error release, Delete-during-fill)
// is maximally contended.
func TestStressSingleFlightSameKey(t *testing.T) {
	c := NewWithOptions(Options{MaxBytes: 1 << 20})
	var fills atomic.Int64
	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0, 1, 2:
					e, err := c.GetOrFill("hot", 50*time.Millisecond, func() (Entry, error) {
						fills.Add(1)
						return Entry{Data: []byte("payload")}, nil
					})
					if err != nil {
						t.Errorf("GetOrFill: %v", err)
					} else if string(e.Data) != "payload" {
						t.Errorf("got %q", e.Data)
					}
				case 3:
					c.Delete("hot")
				case 4:
					c.Get("hot")
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(goroutines * 200 * 3 / 5)
	if f := fills.Load(); f >= total {
		t.Errorf("fills = %d of %d lookups — single-flight is not coalescing", f, total)
	}
}

// TestStressSweeperConcurrentWithTraffic runs the background sweeper
// against live GetOrFill/Delete traffic.
func TestStressSweeperConcurrentWithTraffic(t *testing.T) {
	c := NewWithOptions(Options{MaxBytes: 32 << 10, SweepInterval: time.Millisecond})
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if i%3 == 0 {
					c.Delete(key)
					continue
				}
				if _, err := c.GetOrFill(key, time.Millisecond, func() (Entry, error) {
					return Entry{Data: make([]byte, 256)}, nil
				}); err != nil {
					t.Errorf("GetOrFill: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
}
