package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msite/internal/obs"
)

// fakeTier is an in-memory SecondTier with optional per-call blocking,
// standing in for internal/store (which cannot be imported here without
// a cycle in the test build graph).
type fakeTier struct {
	mu      sync.Mutex
	m       map[string]fakeRec
	puts    int
	deletes int
	gets    int
	// block, when non-nil, stalls every Put until the channel closes —
	// the stalled-disk fault.
	block chan struct{}
	// failPuts makes every Put error.
	failPuts bool
}

type fakeRec struct {
	data    []byte
	mime    string
	expires time.Time
}

func newFakeTier() *fakeTier {
	return &fakeTier{m: make(map[string]fakeRec)}
}

func (f *fakeTier) Get(key string) ([]byte, string, time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	r, ok := f.m[key]
	if !ok {
		return nil, "", time.Time{}, false
	}
	return r.data, r.mime, r.expires, true
}

func (f *fakeTier) Put(key string, data []byte, mime string, ttl time.Duration) error {
	if f.block != nil {
		<-f.block
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failPuts {
		return errors.New("disk full")
	}
	f.puts++
	var exp time.Time
	if ttl > 0 {
		exp = time.Now().Add(ttl)
	}
	f.m[key] = fakeRec{data: append([]byte(nil), data...), mime: mime, expires: exp}
	return nil
}

func (f *fakeTier) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deletes++
	delete(f.m, key)
	return nil
}

// Keys implements KeyLister (insertion order is good enough here).
func (f *fakeTier) Keys() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	return keys
}

func newTieredTest(t *testing.T, tier SecondTier, o TieredOptions) *Tiered {
	t.Helper()
	tc := NewTiered(New(), tier, o)
	t.Cleanup(tc.Close)
	return tc
}

func TestTieredWriteThroughAndFallthrough(t *testing.T) {
	tier := newFakeTier()
	tc := newTieredTest(t, tier, TieredOptions{})

	fills := 0
	fill := func() (Entry, error) {
		fills++
		return Entry{Data: []byte("rendered"), MIME: "text/html"}, nil
	}
	e, err := tc.GetOrFill("k", time.Minute, fill)
	if err != nil || string(e.Data) != "rendered" || fills != 1 {
		t.Fatalf("cold fill: %v, %q, fills=%d", err, e.Data, fills)
	}
	if !tc.Flush(time.Second) {
		t.Fatal("write-through did not drain")
	}
	if _, _, _, ok := tier.Get("k"); !ok {
		t.Fatal("fill result not written through to the tier")
	}

	// Simulate a restart: fresh L1 over the same tier. The fill must NOT
	// run again — the durable record satisfies the miss.
	tc2 := newTieredTest(t, tier, TieredOptions{})
	e2, err := tc2.GetOrFill("k", time.Minute, func() (Entry, error) {
		t.Error("fill ran despite durable record")
		return Entry{}, errors.New("unreachable")
	})
	if err != nil || string(e2.Data) != "rendered" || e2.MIME != "text/html" {
		t.Fatalf("warm fill-through: %v, %q, %q", err, e2.Data, e2.MIME)
	}
	// And it is now promoted: a plain L1 Get hits without touching the tier.
	if _, ok := tc2.Cache.Get("k"); !ok {
		t.Fatal("tier hit was not promoted into L1")
	}
}

func TestTieredGetPromotes(t *testing.T) {
	tier := newFakeTier()
	_ = tier.Put("k", []byte("v"), "m", time.Minute)
	tc := newTieredTest(t, tier, TieredOptions{})
	e, ok := tc.Get("k")
	if !ok || string(e.Data) != "v" {
		t.Fatalf("Get through tier = %q, %v", e.Data, ok)
	}
	if _, ok := tc.Cache.Get("k"); !ok {
		t.Fatal("tier hit not promoted")
	}
	if _, ok := tc.Get("absent"); ok {
		t.Fatal("absent key reported present")
	}
}

func TestTieredPutAndDeleteWriteThrough(t *testing.T) {
	tier := newFakeTier()
	tc := newTieredTest(t, tier, TieredOptions{})
	tc.Put("k", Entry{Data: []byte("v"), MIME: "m"}, time.Minute)
	if !tc.Flush(time.Second) {
		t.Fatal("queue did not drain")
	}
	if _, _, _, ok := tier.Get("k"); !ok {
		t.Fatal("Put not written through")
	}
	tc.Delete("k")
	if !tc.Flush(time.Second) {
		t.Fatal("queue did not drain")
	}
	if _, _, _, ok := tier.Get("k"); ok {
		t.Fatal("Delete not propagated to tier")
	}
	// ttl<=0 means uncacheable: no write-through either.
	tc.Put("nope", Entry{Data: []byte("v")}, 0)
	tc.Flush(time.Second)
	if _, _, _, ok := tier.Get("nope"); ok {
		t.Fatal("uncacheable entry written through")
	}
}

func TestTieredNeverBlocksOnStalledWriter(t *testing.T) {
	tier := newFakeTier()
	tier.block = make(chan struct{})
	defer close(tier.block)
	tc := newTieredTest(t, tier, TieredOptions{Writers: 1, QueueLen: 2})

	start := time.Now()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		_, err := tc.GetOrFill(key, time.Minute, func() (Entry, error) {
			return Entry{Data: []byte("v"), MIME: "m"}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("serving path blocked on stalled writer: %v for 50 fills", elapsed)
	}
	if tc.WriteDrops() == 0 {
		t.Fatal("no write drops counted despite a stalled writer and full queue")
	}
}

func TestTieredWriteDropMetric(t *testing.T) {
	tier := newFakeTier()
	tier.block = make(chan struct{})
	defer close(tier.block)
	tc := newTieredTest(t, tier, TieredOptions{Writers: 1, QueueLen: 1})
	reg := obs.NewRegistry()
	tc.SetObs(reg)
	for i := 0; i < 10; i++ {
		tc.Put(fmt.Sprintf("k%d", i), Entry{Data: []byte("v")}, time.Minute)
	}
	snap := reg.Snapshot()
	c, ok := snap.Counter("msite_store_write_drops_total")
	if !ok || c.Value == 0 {
		t.Fatalf("msite_store_write_drops_total = %v (ok=%v); want > 0", c, ok)
	}
	if c.Value != tc.WriteDrops() {
		t.Fatalf("metric %d != accessor %d", c.Value, tc.WriteDrops())
	}
}

func TestTieredFillErrorNotWrittenThrough(t *testing.T) {
	tier := newFakeTier()
	tc := newTieredTest(t, tier, TieredOptions{})
	wantErr := errors.New("render failed")
	if _, err := tc.GetOrFill("k", time.Minute, func() (Entry, error) {
		return Entry{}, wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	tc.Flush(time.Second)
	if _, _, _, ok := tier.Get("k"); ok {
		t.Fatal("failed fill written through")
	}
}

func TestTieredStaleFillThrough(t *testing.T) {
	tier := newFakeTier()
	_ = tier.Put("k", []byte("durable"), "m", time.Minute)
	tc := newTieredTest(t, tier, TieredOptions{})
	e, stale, err := tc.GetOrFillStale("k", time.Minute, time.Minute, func() (Entry, error) {
		t.Error("fill ran despite durable record")
		return Entry{}, errors.New("unreachable")
	})
	if err != nil || stale || string(e.Data) != "durable" {
		t.Fatalf("GetOrFillStale through tier = %q, stale=%v, %v", e.Data, stale, err)
	}
}

func TestTieredRehydrate(t *testing.T) {
	tier := newFakeTier()
	for i := 0; i < 5; i++ {
		_ = tier.Put(fmt.Sprintf("k%d", i), []byte("warm"), "m", time.Minute)
	}
	_ = tier.Put("expired", []byte("old"), "m", -1) // zero expiry → promoteTTL path
	tc := newTieredTest(t, tier, TieredOptions{})
	n := tc.Rehydrate(0)
	if n != 6 {
		t.Fatalf("Rehydrate loaded %d records; want 6", n)
	}
	for i := 0; i < 5; i++ {
		if _, ok := tc.Cache.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d not rehydrated into L1", i)
		}
	}
	// Byte cap honored.
	tc2 := newTieredTest(t, newFakeTierFrom(tier), TieredOptions{})
	if n := tc2.Rehydrate(5); n < 1 || n >= 6 {
		t.Fatalf("byte-capped Rehydrate loaded %d records", n)
	}
}

// newFakeTierFrom copies records so a second Tiered gets its own tier.
func newFakeTierFrom(src *fakeTier) *fakeTier {
	src.mu.Lock()
	defer src.mu.Unlock()
	f := newFakeTier()
	for k, v := range src.m {
		f.m[k] = v
	}
	return f
}

func TestTieredCloseIdempotentAndDrains(t *testing.T) {
	tier := newFakeTier()
	tc := NewTiered(New(), tier, TieredOptions{})
	for i := 0; i < 20; i++ {
		tc.Put(fmt.Sprintf("k%d", i), Entry{Data: []byte("v")}, time.Minute)
	}
	tc.Close()
	tc.Close() // must not panic or double-close the queue
	tier.mu.Lock()
	puts := tier.puts
	tier.mu.Unlock()
	if puts != 20 {
		t.Fatalf("Close drained %d of 20 queued writes", puts)
	}
	// Post-close mutations are dropped, not panics.
	tc.Put("late", Entry{Data: []byte("v")}, time.Minute)
	tc.Delete("late")
}

// TestCacheCloseIdempotent is the satellite regression test: a second
// Close on the plain cache (now reachable via Framework and Tiered
// teardown paths) must be a no-op, not a double close of sweepStop.
func TestCacheCloseIdempotent(t *testing.T) {
	c := NewWithOptions(Options{SweepInterval: time.Millisecond})
	c.Put("k", Entry{Data: []byte("v")}, time.Minute)
	c.Close()
	c.Close()
	// Still usable (just unswept) afterwards, per the contract.
	if _, ok := c.Get("k"); !ok {
		t.Fatal("cache unusable after double Close")
	}
}

func TestTieredConcurrent(t *testing.T) {
	tier := newFakeTier()
	tc := newTieredTest(t, tier, TieredOptions{Writers: 4, QueueLen: 64})
	var fills atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%10)
				switch i % 4 {
				case 0:
					_, _ = tc.GetOrFill(key, time.Minute, func() (Entry, error) {
						fills.Add(1)
						return Entry{Data: []byte("v"), MIME: "m"}, nil
					})
				case 1:
					tc.Get(key)
				case 2:
					tc.Put(key, Entry{Data: []byte("v2")}, time.Minute)
				default:
					tc.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}
