package css

import (
	"sort"
	"strings"

	"msite/internal/dom"
)

// Style is a computed style: resolved property → value text.
type Style map[string]string

// Get returns the property value or def.
func (s Style) Get(prop, def string) string {
	if v, ok := s[prop]; ok {
		return v
	}
	return def
}

// inheritedProps are properties that propagate from parent to child when
// not explicitly set.
var inheritedProps = map[string]bool{
	"color":           true,
	"font-family":     true,
	"font-size":       true,
	"font-weight":     true,
	"font-style":      true,
	"line-height":     true,
	"text-align":      true,
	"letter-spacing":  true,
	"white-space":     true,
	"list-style-type": true,
	"visibility":      true,
	"cursor":          true,
}

// blockTags are elements whose default display is block.
var blockTags = map[string]bool{
	"html": true, "body": true, "div": true, "p": true, "h1": true,
	"h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"ul": true, "ol": true, "li": true, "dl": true, "dt": true, "dd": true,
	"table": true, "form": true, "fieldset": true, "blockquote": true,
	"pre": true, "hr": true, "address": true, "article": true,
	"aside": true, "footer": true, "header": true, "nav": true,
	"section": true, "main": true, "figure": true, "center": true,
}

// tableRowTags/tableCellTags get their own display defaults so the layout
// engine can treat table structure distinctly.
var tableRowTags = map[string]bool{"tr": true, "thead": true, "tbody": true, "tfoot": true}
var tableCellTags = map[string]bool{"td": true, "th": true}

// hiddenTags never generate boxes.
var hiddenTags = map[string]bool{
	"head": true, "script": true, "style": true, "meta": true,
	"link": true, "title": true, "base": true, "noscript": true,
}

// DefaultDisplay returns the initial display value for a tag.
func DefaultDisplay(tag string) string {
	switch {
	case hiddenTags[tag]:
		return "none"
	case tableCellTags[tag]:
		return "table-cell"
	case tag == "table":
		return "table"
	case tableRowTags[tag]:
		return "table-row"
	case blockTags[tag]:
		return "block"
	case tag == "img" || tag == "input" || tag == "select" ||
		tag == "textarea" || tag == "button":
		return "inline-block"
	default:
		return "inline"
	}
}

// defaultFontSizes maps heading levels to their conventional pixel sizes.
var defaultFontSizes = map[string]float64{
	"h1": 32, "h2": 24, "h3": 18.72, "h4": 16, "h5": 13.28, "h6": 10.72,
	"small": 13,
}

// defaultFontWeight is bold for these tags.
var boldTags = map[string]bool{
	"b": true, "strong": true, "h1": true, "h2": true, "h3": true,
	"h4": true, "h5": true, "h6": true, "th": true,
}

// Styler computes styles for a document against a set of stylesheets.
// The zero value is usable with no author styles; add sheets with
// AddSheet, or use StylerForDocument to collect <style> elements.
type Styler struct {
	sheets []*Stylesheet
	// mediaAccept, when non-empty, is the set of media condition
	// substrings considered active (e.g. "screen"). Rules with other
	// conditions are skipped.
	mediaAccept []string
}

// NewStyler returns a Styler over the given stylesheets.
func NewStyler(sheets ...*Stylesheet) *Styler {
	return &Styler{sheets: sheets, mediaAccept: []string{"screen", "all"}}
}

// StylerForDocument collects every <style> element in doc, plus any
// extra sheets (e.g. fetched from <link> by the caller), into a Styler.
// Style elements whose media attribute targets another medium (e.g.
// media="print") are skipped, matching a screen renderer.
func StylerForDocument(doc *dom.Node, extra ...*Stylesheet) *Styler {
	s := NewStyler()
	for _, styleEl := range doc.Elements("style") {
		if media := strings.ToLower(styleEl.AttrOr("media", "")); media != "" {
			if !strings.Contains(media, "screen") && !strings.Contains(media, "all") {
				continue
			}
		}
		// dom.Text() deliberately skips style content (it is code, not
		// copy), so read the raw text children directly.
		var src strings.Builder
		for c := styleEl.FirstChild; c != nil; c = c.NextSibling {
			if c.Type == dom.TextNode {
				src.WriteString(c.Data)
			}
		}
		s.AddSheet(ParseStylesheet(src.String()))
	}
	for _, sheet := range extra {
		s.AddSheet(sheet)
	}
	return s
}

// AddSheet appends a stylesheet; later sheets win ties in source order.
func (s *Styler) AddSheet(sheet *Stylesheet) {
	s.sheets = append(s.sheets, sheet)
}

// SetMedia replaces the accepted media condition substrings.
func (s *Styler) SetMedia(accept ...string) {
	s.mediaAccept = make([]string, len(accept))
	copy(s.mediaAccept, accept)
}

func (s *Styler) mediaActive(cond string) bool {
	if cond == "" {
		return true
	}
	cond = strings.ToLower(cond)
	for _, acc := range s.mediaAccept {
		if strings.Contains(cond, acc) {
			return true
		}
	}
	return false
}

type weightedDecl struct {
	decl Declaration
	spec int
	seq  int
}

// ComputedStyle resolves the style for one element: defaults, then
// inherited values from parentStyle (may be nil), then matching author
// rules by specificity and order, then the inline style attribute, with
// !important on top — the standard cascade.
func (s *Styler) ComputedStyle(n *dom.Node, parentStyle Style) Style {
	out := Style{}

	// 1. Tag defaults.
	out["display"] = DefaultDisplay(n.Tag)
	if size, ok := defaultFontSizes[n.Tag]; ok {
		out["font-size"] = formatPx(size)
	}
	if boldTags[n.Tag] {
		out["font-weight"] = "bold"
	}
	switch n.Tag {
	case "i", "em":
		out["font-style"] = "italic"
	case "a":
		out["color"] = "#0000ee"
	case "center":
		out["text-align"] = "center"
	}

	// 2. Inheritance.
	for prop := range inheritedProps {
		if v, ok := parentStyle[prop]; ok {
			if _, set := out[prop]; !set {
				out[prop] = v
			}
		}
	}

	// 3. Author rules.
	var matched, important []weightedDecl
	seq := 0
	for _, sheet := range s.sheets {
		for _, rule := range sheet.Rules {
			if !s.mediaActive(rule.Media) {
				continue
			}
			best := -1
			for _, sel := range rule.Selectors {
				if sel.Match(n) && sel.Specificity() > best {
					best = sel.Specificity()
				}
			}
			if best < 0 {
				continue
			}
			for _, d := range rule.Decls {
				wd := weightedDecl{decl: d, spec: best, seq: seq}
				seq++
				if d.Important {
					important = append(important, wd)
				} else {
					matched = append(matched, wd)
				}
			}
		}
	}
	applyOrdered := func(decls []weightedDecl) {
		sort.SliceStable(decls, func(i, j int) bool {
			if decls[i].spec != decls[j].spec {
				return decls[i].spec < decls[j].spec
			}
			return decls[i].seq < decls[j].seq
		})
		for _, wd := range decls {
			out[wd.decl.Prop] = wd.decl.Value
		}
	}
	applyOrdered(matched)

	// 4. Inline style (specificity above any selector, below !important).
	if inline, ok := n.Attr("style"); ok {
		var inlineImportant []weightedDecl
		for _, d := range ParseDeclarations(inline) {
			if d.Important {
				inlineImportant = append(inlineImportant, weightedDecl{decl: d})
				continue
			}
			out[d.Prop] = d.Value
		}
		// Inline !important outranks sheet !important; append after.
		applyOrdered(important)
		for _, wd := range inlineImportant {
			out[wd.decl.Prop] = wd.decl.Value
		}
		resolveRelative(out, parentStyle)
		resolveInherit(out, parentStyle)
		return out
	}

	// 5. !important from sheets.
	applyOrdered(important)
	resolveRelative(out, parentStyle)
	resolveInherit(out, parentStyle)
	return out
}

// resolveInherit substitutes explicit "inherit" values with the parent's
// computed value (or drops them at the root).
func resolveInherit(out Style, parentStyle Style) {
	for prop, val := range out {
		if strings.ToLower(strings.TrimSpace(val)) != "inherit" {
			continue
		}
		if parentStyle != nil {
			if pv, ok := parentStyle[prop]; ok {
				out[prop] = pv
				continue
			}
		}
		if prop == "display" {
			out[prop] = "inline"
			continue
		}
		delete(out, prop)
	}
}

// resolveRelative converts relative font-size values to absolute pixels
// so children inherit resolved values.
func resolveRelative(out Style, parentStyle Style) {
	fs, ok := out["font-size"]
	if !ok {
		return
	}
	parentPx := DefaultFontSize
	if parentStyle != nil {
		if v, ok := ParseLength(parentStyle.Get("font-size", ""), DefaultFontSize); ok {
			parentPx = v
		}
	}
	lower := strings.ToLower(strings.TrimSpace(fs))
	switch lower {
	case "smaller":
		out["font-size"] = formatPx(parentPx / 1.2)
		return
	case "larger":
		out["font-size"] = formatPx(parentPx * 1.2)
		return
	case "xx-small":
		out["font-size"] = formatPx(DefaultFontSize * 0.5625)
		return
	case "x-small":
		out["font-size"] = formatPx(DefaultFontSize * 0.625)
		return
	case "small":
		out["font-size"] = formatPx(DefaultFontSize * 0.8125)
		return
	case "medium":
		out["font-size"] = formatPx(DefaultFontSize)
		return
	case "large":
		out["font-size"] = formatPx(DefaultFontSize * 1.125)
		return
	case "x-large":
		out["font-size"] = formatPx(DefaultFontSize * 1.5)
		return
	case "xx-large":
		out["font-size"] = formatPx(DefaultFontSize * 2)
		return
	}
	if strings.HasSuffix(lower, "em") || strings.HasSuffix(lower, "%") {
		if v, ok := ParseLength(lower, parentPx); ok {
			out["font-size"] = formatPx(v)
		}
	}
}

func formatPx(v float64) string {
	// Render with limited precision; layout does not need sub-1/100px.
	i := int(v*100 + 0.5)
	whole, frac := i/100, i%100
	if frac == 0 {
		return itoa(whole) + "px"
	}
	if frac%10 == 0 {
		return itoa(whole) + "." + itoa(frac/10) + "px"
	}
	fs := itoa(frac)
	if frac < 10 {
		fs = "0" + fs
	}
	return itoa(whole) + "." + fs + "px"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
