package css_test

import (
	"fmt"

	"msite/internal/css"
	"msite/internal/html"
)

// Selectors are how the attribute system identifies page objects.
func ExampleParseSelector() {
	doc := html.Parse(`<table class="tborder">
		<tr><td class="alt1">a</td><td class="alt2">b</td></tr>
		<tr><td class="alt1">c</td></tr>
	</table>`)
	sel, err := css.ParseSelector("table.tborder td.alt1")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("matches:", len(sel.QueryAll(doc)))
	fmt.Println("specificity:", sel.Specificity())
	// Output:
	// matches: 2
	// specificity: 2002
}

func ExampleStylerForDocument() {
	doc := html.Parse(`<html><head><style>
		p { color: navy; font-size: 14px }
	</style></head><body><p>text</p></body></html>`)
	styler := css.StylerForDocument(doc)
	style := styler.ComputedStyle(doc.Elements("p")[0], nil)
	fmt.Println(style.Get("color", "?"), style.Get("font-size", "?"))
	// Output:
	// navy 14px
}
