package css

import (
	"testing"

	"msite/internal/html"
)

func TestParseStylesheetBasic(t *testing.T) {
	sheet := ParseStylesheet(`
		body { margin: 0; color: black }
		.tborder, .alt1 { background: #f5f5ff; border: 1px solid #888; }
	`)
	if len(sheet.Rules) != 2 {
		t.Fatalf("rules = %d", len(sheet.Rules))
	}
	if len(sheet.Rules[1].Selectors) != 2 {
		t.Fatalf("selectors = %d", len(sheet.Rules[1].Selectors))
	}
	// border shorthand expands to 12 longhands + background-color.
	var hasBorderTop, hasBG bool
	for _, d := range sheet.Rules[1].Decls {
		if d.Prop == "border-top-width" && d.Value == "1px" {
			hasBorderTop = true
		}
		if d.Prop == "background-color" && d.Value == "#f5f5ff" {
			hasBG = true
		}
	}
	if !hasBorderTop || !hasBG {
		t.Fatalf("shorthand expansion missing: %+v", sheet.Rules[1].Decls)
	}
}

func TestParseStylesheetComments(t *testing.T) {
	sheet := ParseStylesheet(`/* header */ p { /* inner */ color: red; } /* trailing`)
	if len(sheet.Rules) != 1 || sheet.Rules[0].Decls[0].Value != "red" {
		t.Fatalf("rules: %+v", sheet.Rules)
	}
}

func TestParseStylesheetSkipsBadSelector(t *testing.T) {
	sheet := ParseStylesheet(`
		p:nosuchpseudo(3) { color: red }
		b { color: blue }
	`)
	if len(sheet.Rules) != 1 {
		t.Fatalf("rules = %d, want only the b rule", len(sheet.Rules))
	}
}

func TestParseStylesheetMedia(t *testing.T) {
	sheet := ParseStylesheet(`
		@media screen { p { color: red } }
		@media print { p { color: black } }
		@import url("other.css");
		@font-face { font-family: X; src: url(x.woff) }
		b { font-weight: bold }
	`)
	if len(sheet.Rules) != 3 {
		t.Fatalf("rules = %d: %+v", len(sheet.Rules), sheet.Rules)
	}
	if sheet.Rules[0].Media != "screen" || sheet.Rules[1].Media != "print" {
		t.Fatalf("media wrong: %q %q", sheet.Rules[0].Media, sheet.Rules[1].Media)
	}
	if sheet.Rules[2].Media != "" {
		t.Fatal("bare rule should have no media")
	}
}

func TestParseDeclarationsImportant(t *testing.T) {
	decls := ParseDeclarations(`color: red !important; width: 10px`)
	if len(decls) != 2 {
		t.Fatalf("decls = %+v", decls)
	}
	if !decls[0].Important || decls[0].Value != "red" {
		t.Fatalf("important parse wrong: %+v", decls[0])
	}
	if decls[1].Important {
		t.Fatal("width should not be important")
	}
}

func TestParseDeclarationsURLValue(t *testing.T) {
	decls := ParseDeclarations(`background-image: url(a;b.png); color: red`)
	if len(decls) != 2 {
		t.Fatalf("semicolon inside url() split wrongly: %+v", decls)
	}
}

func TestExpandBoxVariants(t *testing.T) {
	check := func(value string, top, right, bottom, left string) {
		t.Helper()
		decls := ParseDeclarations("margin: " + value)
		got := map[string]string{}
		for _, d := range decls {
			got[d.Prop] = d.Value
		}
		want := map[string]string{
			"margin-top": top, "margin-right": right,
			"margin-bottom": bottom, "margin-left": left,
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("margin:%q → %s = %q, want %q", value, k, got[k], v)
			}
		}
	}
	check("5px", "5px", "5px", "5px", "5px")
	check("1px 2px", "1px", "2px", "1px", "2px")
	check("1px 2px 3px", "1px", "2px", "3px", "2px")
	check("1px 2px 3px 4px", "1px", "2px", "3px", "4px")
}

func TestExpandBorderKeywordWidths(t *testing.T) {
	decls := ParseDeclarations("border: thin dotted navy")
	got := map[string]string{}
	for _, d := range decls {
		got[d.Prop] = d.Value
	}
	if got["border-left-width"] != "1px" || got["border-top-style"] != "dotted" || got["border-right-color"] != "navy" {
		t.Fatalf("border expansion: %v", got)
	}
}

func TestUnbalancedBracesRecovered(t *testing.T) {
	sheet := ParseStylesheet(`p { color: red`)
	if len(sheet.Rules) != 1 {
		t.Fatalf("rules = %d", len(sheet.Rules))
	}
}

func TestComputedStyleCascade(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			p { color: blue; font-size: 12px }
			.big { font-size: 20px }
			#special { color: green }
		</style></head>
		<body>
			<p id="special" class="big" style="margin-top: 3px">text</p>
			<p>plain</p>
		</body></html>`)
	styler := StylerForDocument(doc)
	body := doc.Body()
	bodyStyle := styler.ComputedStyle(body, nil)

	ps := doc.Elements("p")
	st := styler.ComputedStyle(ps[0], bodyStyle)
	if st.Get("color", "") != "green" {
		t.Errorf("id should beat tag: color = %q", st.Get("color", ""))
	}
	if st.Get("font-size", "") != "20px" {
		t.Errorf("class should beat tag: font-size = %q", st.Get("font-size", ""))
	}
	if st.Get("margin-top", "") != "3px" {
		t.Errorf("inline style lost: %q", st.Get("margin-top", ""))
	}

	st2 := styler.ComputedStyle(ps[1], bodyStyle)
	if st2.Get("color", "") != "blue" || st2.Get("font-size", "") != "12px" {
		t.Errorf("plain p style: %v", st2)
	}
}

func TestComputedStyleImportant(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			p { color: red !important }
			#x { color: blue }
		</style></head>
		<body><p id="x">t</p></body></html>`)
	styler := StylerForDocument(doc)
	p := doc.Elements("p")[0]
	st := styler.ComputedStyle(p, nil)
	if st.Get("color", "") != "red" {
		t.Fatalf("!important should beat id: %q", st.Get("color", ""))
	}
}

func TestComputedStyleInheritance(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			body { color: maroon; font-size: 14px }
		</style></head>
		<body><div><p><span>deep</span></p></div></body></html>`)
	styler := StylerForDocument(doc)
	body := doc.Body()
	bodyStyle := styler.ComputedStyle(body, nil)
	div := doc.Elements("div")[0]
	divStyle := styler.ComputedStyle(div, bodyStyle)
	p := doc.Elements("p")[0]
	pStyle := styler.ComputedStyle(p, divStyle)
	span := doc.Elements("span")[0]
	spanStyle := styler.ComputedStyle(span, pStyle)
	if spanStyle.Get("color", "") != "maroon" {
		t.Fatalf("color not inherited: %v", spanStyle)
	}
	if spanStyle.Get("font-size", "") != "14px" {
		t.Fatalf("font-size not inherited: %v", spanStyle)
	}
	// Non-inherited property must not leak.
	if _, ok := spanStyle["margin-top"]; ok {
		t.Fatal("margin must not inherit")
	}
}

func TestComputedStyleRelativeFontSize(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			body { font-size: 20px }
			p { font-size: 150% }
			span { font-size: 0.5em }
		</style></head>
		<body><p><span>x</span></p></body></html>`)
	styler := StylerForDocument(doc)
	bodyStyle := styler.ComputedStyle(doc.Body(), nil)
	pStyle := styler.ComputedStyle(doc.Elements("p")[0], bodyStyle)
	if pStyle.Get("font-size", "") != "30px" {
		t.Fatalf("150%% of 20px = %q", pStyle.Get("font-size", ""))
	}
	spanStyle := styler.ComputedStyle(doc.Elements("span")[0], pStyle)
	if spanStyle.Get("font-size", "") != "15px" {
		t.Fatalf("0.5em of 30px = %q", spanStyle.Get("font-size", ""))
	}
}

func TestComputedStyleDefaults(t *testing.T) {
	doc := html.Parse(`<html><body><div>x</div><span>y</span><script>z</script><h1>t</h1></body></html>`)
	styler := StylerForDocument(doc)
	get := func(tag string) Style {
		return styler.ComputedStyle(doc.Elements(tag)[0], nil)
	}
	if get("div").Get("display", "") != "block" {
		t.Fatal("div should default block")
	}
	if get("span").Get("display", "") != "inline" {
		t.Fatal("span should default inline")
	}
	if get("script").Get("display", "") != "none" {
		t.Fatal("script should default none")
	}
	if get("h1").Get("font-weight", "") != "bold" {
		t.Fatal("h1 should default bold")
	}
}

func TestMediaFiltering(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			@media print { p { color: black } }
			@media screen { p { color: red } }
		</style></head><body><p>x</p></body></html>`)
	styler := StylerForDocument(doc)
	p := doc.Elements("p")[0]
	if got := styler.ComputedStyle(p, nil).Get("color", ""); got != "red" {
		t.Fatalf("screen media should apply: %q", got)
	}
	styler.SetMedia("print")
	if got := styler.ComputedStyle(p, nil).Get("color", ""); got != "black" {
		t.Fatalf("print media should apply after SetMedia: %q", got)
	}
}

func TestSourceOrderTieBreak(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			.a { color: red }
			.b { color: blue }
		</style></head><body><p class="a b">x</p></body></html>`)
	styler := StylerForDocument(doc)
	p := doc.Elements("p")[0]
	if got := styler.ComputedStyle(p, nil).Get("color", ""); got != "blue" {
		t.Fatalf("later rule should win tie: %q", got)
	}
}

func TestInheritKeyword(t *testing.T) {
	doc := html.Parse(`
		<html><head><style>
			body { background-color: #112233 }
			div { background-color: inherit }
			p { color: inherit }
		</style></head>
		<body><div><p style="margin-top: inherit">x</p></div></body></html>`)
	styler := StylerForDocument(doc)
	bodyStyle := styler.ComputedStyle(doc.Body(), nil)
	div := doc.Elements("div")[0]
	divStyle := styler.ComputedStyle(div, bodyStyle)
	// background-color is not inherited by default; "inherit" forces it.
	if got := divStyle.Get("background-color", ""); got != "#112233" {
		t.Fatalf("inherited background = %q", got)
	}
	p := doc.Elements("p")[0]
	pStyle := styler.ComputedStyle(p, divStyle)
	// color: inherit with no parent color resolves to nothing (root
	// default applies at paint time).
	if v, ok := pStyle["margin-top"]; ok && v == "inherit" {
		t.Fatalf("inline inherit not resolved: %q", v)
	}
}

func TestInheritAtRootDropped(t *testing.T) {
	doc := html.Parse(`<html><body style="color: inherit">x</body></html>`)
	styler := StylerForDocument(doc)
	st := styler.ComputedStyle(doc.Body(), nil)
	if v, ok := st["color"]; ok && v == "inherit" {
		t.Fatalf("root inherit leaked: %q", v)
	}
}

func TestStyleMediaAttributeFiltered(t *testing.T) {
	doc := html.Parse(`
		<html><head>
		<style media="print">p { color: black }</style>
		<style media="screen">p { color: red }</style>
		<style>p { font-size: 18px }</style>
		</head><body><p>x</p></body></html>`)
	styler := StylerForDocument(doc)
	p := doc.Elements("p")[0]
	st := styler.ComputedStyle(p, nil)
	if st.Get("color", "") != "red" {
		t.Fatalf("color = %q, print sheet should be skipped", st.Get("color", ""))
	}
	if st.Get("font-size", "") != "18px" {
		t.Fatal("unscoped sheet should apply")
	}
}
