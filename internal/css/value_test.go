package css

import (
	"image/color"
	"testing"
	"testing/quick"
)

func TestParseLength(t *testing.T) {
	cases := []struct {
		in   string
		base float64
		want float64
		ok   bool
	}{
		{"10px", 0, 10, true},
		{"10", 0, 10, true},
		{"0", 0, 0, true},
		{"  12px ", 0, 12, true},
		{"1.5px", 0, 1.5, true},
		{"-4px", 0, -4, true},
		{"72pt", 0, 96, true},
		{"1in", 0, 96, true},
		{"2.54cm", 0, 96, true},
		{"25.4mm", 0, 96, true},
		{"2em", 10, 20, true},
		{"2em", 0, 32, true}, // falls back to 16px base
		{"1rem", 0, 16, true},
		{"50%", 200, 100, true},
		{"50%", 0, 0, false}, // % needs a base
		{"auto", 0, 0, false},
		{"inherit", 0, 0, false},
		{"", 0, 0, false},
		{"abc", 0, 0, false},
		{"px", 0, 0, false},
	}
	for _, c := range cases {
		got, ok := ParseLength(c.in, c.base)
		if ok != c.ok || (ok && !close64(got, c.want)) {
			t.Errorf("ParseLength(%q, %v) = %v, %v; want %v, %v", c.in, c.base, got, ok, c.want, c.ok)
		}
	}
}

func TestParseColorHex(t *testing.T) {
	cases := map[string]color.RGBA{
		"#fff":    {255, 255, 255, 255},
		"#000":    {0, 0, 0, 255},
		"#f00":    {255, 0, 0, 255},
		"#ff8800": {255, 136, 0, 255},
		"#ABCDEF": {171, 205, 239, 255},
	}
	for in, want := range cases {
		got, ok := ParseColor(in)
		if !ok || got != want {
			t.Errorf("ParseColor(%q) = %v, %v; want %v", in, got, ok, want)
		}
	}
}

func TestParseColorNamed(t *testing.T) {
	got, ok := ParseColor("RED")
	if !ok || got != (color.RGBA{255, 0, 0, 255}) {
		t.Fatalf("red = %v, %v", got, ok)
	}
	if c, ok := ParseColor("transparent"); !ok || c.A != 0 {
		t.Fatal("transparent should parse with zero alpha")
	}
}

func TestParseColorRGBFunc(t *testing.T) {
	cases := map[string]color.RGBA{
		"rgb(1,2,3)":          {1, 2, 3, 255},
		"rgb( 10 , 20 , 30 )": {10, 20, 30, 255},
		"rgb(300,0,0)":        {255, 0, 0, 255}, // clamped
		"rgb(100%,0%,50%)":    {255, 0, 127, 255},
		"rgba(1,2,3,0.5)":     {1, 2, 3, 127},
		"rgba(1,2,3,2)":       {1, 2, 3, 255}, // alpha clamped
	}
	for in, want := range cases {
		got, ok := ParseColor(in)
		if !ok || got != want {
			t.Errorf("ParseColor(%q) = %v, %v; want %v", in, got, ok, want)
		}
	}
}

func TestParseColorInvalid(t *testing.T) {
	for _, in := range []string{"", "#", "#12", "#12345", "#zzz", "rgb()", "rgb(1,2)", "rgb(a,b,c)", "nosuchcolor", "rgb(-1,0,0)"} {
		if _, ok := ParseColor(in); ok {
			t.Errorf("ParseColor(%q) should fail", in)
		}
	}
}

func TestQuickParseColorNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = ParseColor(s)
		_, _ = ParseLength(s, 16)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func close64(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}
