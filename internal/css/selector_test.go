package css

import (
	"testing"

	"msite/internal/dom"
	"msite/internal/html"
)

const selectorDoc = `
<html><body>
  <div id="main" class="content wide">
    <h1>Title</h1>
    <ul class="nav">
      <li class="first"><a href="/home">Home</a></li>
      <li><a href="/forum" target="_blank">Forum</a></li>
      <li><a href="https://example.com/x.pdf">PDF</a></li>
      <li class="last"><a href="/about" rel="nofollow">About</a></li>
    </ul>
    <p lang="en-US">hello world</p>
    <p></p>
    <form>
      <input type="text" name="user">
      <input type="checkbox" checked>
      <input type="submit" disabled>
    </form>
  </div>
  <div class="sidebar"><span>side</span></div>
</body></html>`

func selDoc(t *testing.T) *dom.Node {
	t.Helper()
	return html.Parse(selectorDoc)
}

func queryTags(t *testing.T, doc *dom.Node, sel string) int {
	t.Helper()
	s, err := ParseSelector(sel)
	if err != nil {
		t.Fatalf("parse %q: %v", sel, err)
	}
	return len(s.QueryAll(doc))
}

func TestSelectorBasics(t *testing.T) {
	doc := selDoc(t)
	cases := map[string]int{
		"li":                 4,
		"*":                  0, // counted below separately
		"#main":              1,
		".nav":               1,
		".content.wide":      1,
		".content .first":    1,
		"ul li":              4,
		"ul > li":            4,
		"body > div":         2,
		"li a":               4,
		"h1 + ul":            1,
		"h1 ~ p":             2,
		"li.first":           1,
		"div#main ul.nav li": 4,
		"span":               1,
		".sidebar span":      1,
		"#main span":         0,
		"ul + p":             0, // p is not adjacent to ul (h1 p p order: ul then p yes!)
	}
	delete(cases, "*")
	delete(cases, "ul + p")
	for sel, want := range cases {
		if got := queryTags(t, doc, sel); got != want {
			t.Errorf("%q matched %d, want %d", sel, got, want)
		}
	}
	if got := queryTags(t, doc, "ul + p"); got != 1 {
		t.Errorf("ul + p matched %d, want 1", got)
	}
}

func TestSelectorAttrOps(t *testing.T) {
	doc := selDoc(t)
	cases := map[string]int{
		`a[href]`:              4,
		`a[href="/home"]`:      1,
		`a[href^="/"]`:         3,
		`a[href$=".pdf"]`:      1,
		`a[href*="example"]`:   1,
		`a[rel~="nofollow"]`:   1,
		`p[lang|="en"]`:        1,
		`input[type=checkbox]`: 1,
		`input[type='submit']`: 1,
		`a[href="missing"]`:    0,
	}
	for sel, want := range cases {
		if got := queryTags(t, doc, sel); got != want {
			t.Errorf("%q matched %d, want %d", sel, got, want)
		}
	}
}

func TestSelectorPseudoClasses(t *testing.T) {
	doc := selDoc(t)
	cases := map[string]int{
		"li:first-child":            1,
		"li:last-child":             1,
		"li:nth-child(2)":           1,
		"li:nth-child(odd)":         2,
		"li:nth-child(even)":        2,
		"li:nth-child(2n+1)":        2,
		"li:nth-child(-n+2)":        2,
		"li:nth-last-child(1)":      1,
		"p:empty":                   1,
		"li:not(.first)":            3,
		"li:not(.first):not(.last)": 2,
		"a:contains(Home)":          1,
		"input:checked":             1,
		"input:disabled":            1,
		"input:enabled":             2,
		"span:only-child":           1,
		"html:root":                 1,
		"a:hover":                   0,
		"li:first-of-type":          1,
		"p:first-of-type":           1,
	}
	for sel, want := range cases {
		if got := queryTags(t, doc, sel); got != want {
			t.Errorf("%q matched %d, want %d", sel, got, want)
		}
	}
}

func TestSelectorList(t *testing.T) {
	sels, err := ParseSelectorList("h1, ul.nav, #main")
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 3 {
		t.Fatalf("got %d selectors", len(sels))
	}
}

func TestSelectorListIgnoresNestedCommas(t *testing.T) {
	sels, err := ParseSelectorList(`a[title="x,y"], b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 2 {
		t.Fatalf("got %d selectors: %v", len(sels), sels)
	}
}

func TestSelectorErrors(t *testing.T) {
	bad := []string{"", "   ", ">", "a >", "[", "[]", "[a=", ":nosuch", ":nth-child()", ":nth-child(x)", "a:not("}
	for _, s := range bad {
		if _, err := ParseSelector(s); err == nil {
			t.Errorf("ParseSelector(%q) should fail", s)
		}
	}
}

func TestSpecificity(t *testing.T) {
	cases := map[string]int{
		"div":            1,
		"div p":          2,
		".a":             1_000,
		"#x":             1_000_000,
		"div.a#x":        1_001_001,
		"a[href]":        1_001,
		"li:first-child": 1_001,
		"*":              0,
		":not(#x) b":     1_000_001,
	}
	for sel, want := range cases {
		s := MustSelector(sel)
		if s.Specificity() != want {
			t.Errorf("specificity(%q) = %d, want %d", sel, s.Specificity(), want)
		}
	}
}

func TestQueryReturnsFirstInDocumentOrder(t *testing.T) {
	doc := selDoc(t)
	s := MustSelector("li")
	first := s.Query(doc)
	if first == nil || !first.HasClass("first") {
		t.Fatalf("first li = %v", first)
	}
	if MustSelector("video").Query(doc) != nil {
		t.Fatal("no-match Query should be nil")
	}
}

func TestMatchNonElement(t *testing.T) {
	s := MustSelector("*")
	if s.Match(dom.NewText("x")) || s.Match(nil) {
		t.Fatal("non-elements must not match")
	}
}

func TestDescendantBacktracking(t *testing.T) {
	doc := html.Parse(`<div class="a"><div class="b"><p>x</p></div></div>`)
	if got := queryTags(t, doc, ".a .b p"); got != 1 {
		t.Fatalf(".a .b p = %d", got)
	}
	if got := queryTags(t, doc, ".b .a p"); got != 0 {
		t.Fatalf(".b .a p = %d", got)
	}
}

func TestSiblingCombinator(t *testing.T) {
	doc := html.Parse(`<div><p class="x">1</p><span>s</span><p>2</p><p>3</p></div>`)
	if got := queryTags(t, doc, ".x ~ p"); got != 2 {
		t.Fatalf(".x ~ p = %d", got)
	}
	if got := queryTags(t, doc, ".x + p"); got != 0 {
		t.Fatalf(".x + p = %d (span intervenes)", got)
	}
	if got := queryTags(t, doc, "span + p"); got != 1 {
		t.Fatalf("span + p = %d", got)
	}
}

func TestMatchNth(t *testing.T) {
	cases := []struct {
		a, b, idx int
		want      bool
	}{
		{0, 3, 3, true},
		{0, 3, 4, false},
		{2, 0, 4, true},
		{2, 1, 3, true},
		{2, 1, 4, false},
		{-1, 3, 2, true},
		{-1, 3, 4, false},
		{3, 1, 7, true},
	}
	for _, c := range cases {
		if got := matchNth(c.a, c.b, c.idx); got != c.want {
			t.Errorf("matchNth(%d,%d,%d) = %v", c.a, c.b, c.idx, got)
		}
	}
}
