package css

import (
	"strings"
)

// Declaration is a single property: value pair.
type Declaration struct {
	Prop      string
	Value     string
	Important bool
}

// Rule is one style rule: a selector list and its declarations. Media
// holds the enclosing @media condition, or "" for none.
type Rule struct {
	Selectors []*Selector
	Decls     []Declaration
	Media     string
}

// Stylesheet is a parsed sequence of rules in source order.
type Stylesheet struct {
	Rules []Rule
}

// ParseStylesheet parses CSS source. It is error-tolerant in the CSS
// tradition: rules whose selectors fail to parse are skipped, not fatal,
// so one vendor-prefixed oddity cannot take down a forum skin.
func ParseStylesheet(src string) *Stylesheet {
	sheet := &Stylesheet{}
	parseRules(stripComments(src), "", sheet)
	return sheet
}

func parseRules(src, media string, sheet *Stylesheet) {
	pos := 0
	for pos < len(src) {
		// Skip whitespace.
		for pos < len(src) && isCSSSpace(src[pos]) {
			pos++
		}
		if pos >= len(src) {
			return
		}
		if src[pos] == '@' {
			pos = parseAtRule(src, pos, media, sheet)
			continue
		}
		// Selector up to '{'.
		braceIdx := indexTopLevel(src[pos:], '{')
		if braceIdx < 0 {
			return
		}
		selText := strings.TrimSpace(src[pos : pos+braceIdx])
		bodyStart := pos + braceIdx + 1
		bodyEnd := matchBrace(src, pos+braceIdx)
		if bodyEnd < 0 {
			bodyEnd = len(src)
		}
		body := src[bodyStart:bodyEnd]
		pos = bodyEnd + 1

		sels, err := ParseSelectorList(selText)
		if err != nil {
			continue // skip unparseable rule, keep going
		}
		decls := ParseDeclarations(body)
		if len(decls) == 0 {
			continue
		}
		sheet.Rules = append(sheet.Rules, Rule{Selectors: sels, Decls: decls, Media: media})
	}
}

// parseAtRule handles @media (recursing into its block), and skips any
// other at-rule safely. It returns the position after the rule.
func parseAtRule(src string, pos int, media string, sheet *Stylesheet) int {
	semi := strings.IndexByte(src[pos:], ';')
	brace := indexTopLevel(src[pos:], '{')
	// Statement at-rule (@import, @charset ...): ends at ';'.
	if semi >= 0 && (brace < 0 || semi < brace) {
		return pos + semi + 1
	}
	if brace < 0 {
		return len(src)
	}
	header := strings.TrimSpace(src[pos : pos+brace])
	end := matchBrace(src, pos+brace)
	if end < 0 {
		end = len(src)
	}
	body := src[pos+brace+1 : end]
	if strings.HasPrefix(header, "@media") {
		cond := strings.TrimSpace(strings.TrimPrefix(header, "@media"))
		if media != "" {
			cond = media + " and " + cond
		}
		parseRules(body, cond, sheet)
	}
	// @font-face, @keyframes, @page ...: skipped.
	if end >= len(src) {
		return len(src)
	}
	return end + 1
}

// ParseDeclarations parses the inside of a declaration block (or an
// inline style attribute value).
func ParseDeclarations(src string) []Declaration {
	var out []Declaration
	for _, part := range splitTopLevel(stripComments(src), ';') {
		colon := indexTopLevel(part, ':')
		if colon <= 0 {
			continue
		}
		prop := strings.ToLower(strings.TrimSpace(part[:colon]))
		val := strings.TrimSpace(part[colon+1:])
		if prop == "" || val == "" {
			continue
		}
		d := Declaration{Prop: prop, Value: val}
		if strings.HasSuffix(strings.ToLower(val), "!important") {
			d.Important = true
			d.Value = strings.TrimSpace(val[:len(val)-len("!important")])
		}
		out = append(out, expandShorthand(d)...)
	}
	return out
}

// expandShorthand expands the shorthand properties the layout engine
// consumes into their longhand forms. Unknown properties pass through.
func expandShorthand(d Declaration) []Declaration {
	switch d.Prop {
	case "margin", "padding":
		return expandBox(d.Prop, d)
	case "border-width":
		return expandBox("border", d, "-width")
	case "border":
		return expandBorder(d, "top", "right", "bottom", "left")
	case "border-top", "border-right", "border-bottom", "border-left":
		side := strings.TrimPrefix(d.Prop, "border-")
		return expandBorder(d, side)
	case "background":
		// Take the first token that parses as a color.
		for _, tok := range strings.Fields(d.Value) {
			if _, ok := ParseColor(tok); ok {
				return []Declaration{{Prop: "background-color", Value: tok, Important: d.Important}}
			}
		}
		return []Declaration{d}
	default:
		return []Declaration{d}
	}
}

// expandBox expands 1-4 value box shorthands: margin/padding/border-width.
func expandBox(prefix string, d Declaration, suffix ...string) []Declaration {
	suf := ""
	if len(suffix) > 0 {
		suf = suffix[0]
	}
	vals := strings.Fields(d.Value)
	if len(vals) == 0 || len(vals) > 4 {
		return nil
	}
	var top, right, bottom, left string
	switch len(vals) {
	case 1:
		top, right, bottom, left = vals[0], vals[0], vals[0], vals[0]
	case 2:
		top, right, bottom, left = vals[0], vals[1], vals[0], vals[1]
	case 3:
		top, right, bottom, left = vals[0], vals[1], vals[2], vals[1]
	case 4:
		top, right, bottom, left = vals[0], vals[1], vals[2], vals[3]
	}
	mk := func(side, v string) Declaration {
		return Declaration{Prop: prefix + "-" + side + suf, Value: v, Important: d.Important}
	}
	return []Declaration{mk("top", top), mk("right", right), mk("bottom", bottom), mk("left", left)}
}

// expandBorder expands "border[-side]: width style color" for the given
// sides.
func expandBorder(d Declaration, sides ...string) []Declaration {
	var width, style, colorVal string
	for _, tok := range strings.Fields(d.Value) {
		lower := strings.ToLower(tok)
		switch {
		case lower == "none" || lower == "solid" || lower == "dashed" ||
			lower == "dotted" || lower == "double" || lower == "hidden":
			style = lower
		default:
			if _, ok := ParseColor(tok); ok {
				colorVal = tok
			} else if _, ok := ParseLength(tok, 0); ok || lower == "thin" || lower == "medium" || lower == "thick" {
				switch lower {
				case "thin":
					width = "1px"
				case "medium":
					width = "3px"
				case "thick":
					width = "5px"
				default:
					width = tok
				}
			}
		}
	}
	var out []Declaration
	for _, side := range sides {
		if width != "" {
			out = append(out, Declaration{Prop: "border-" + side + "-width", Value: width, Important: d.Important})
		}
		if style != "" {
			out = append(out, Declaration{Prop: "border-" + side + "-style", Value: style, Important: d.Important})
		}
		if colorVal != "" {
			out = append(out, Declaration{Prop: "border-" + side + "-color", Value: colorVal, Important: d.Important})
		}
	}
	return out
}

func stripComments(src string) string {
	for {
		start := strings.Index(src, "/*")
		if start < 0 {
			return src
		}
		end := strings.Index(src[start+2:], "*/")
		if end < 0 {
			return src[:start]
		}
		src = src[:start] + " " + src[start+2+end+2:]
	}
}

// indexTopLevel returns the index of the first occurrence of target in
// src that is not nested inside braces, parens, brackets, or quotes.
func indexTopLevel(src string, target byte) int {
	var depth int
	var quote byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '(', '[':
			depth++
		case ')', ']':
			if depth > 0 {
				depth--
			}
		case '{':
			if target == '{' && depth == 0 {
				return i
			}
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		default:
			if c == target && depth == 0 {
				return i
			}
		}
	}
	return -1
}

// matchBrace returns the index of the '}' matching the '{' at open,
// or -1.
func matchBrace(src string, open int) int {
	depth := 0
	var quote byte
	for i := open; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func isCSSSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
