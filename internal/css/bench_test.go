package css

import (
	"strings"
	"testing"

	"msite/internal/html"
)

func benchDoc() string {
	var b strings.Builder
	b.WriteString(`<html><head><style>`)
	for i := 0; i < 50; i++ {
		b.WriteString(".c")
		b.WriteString(string(rune('a' + i%26)))
		b.WriteString(" td.alt1 { color: #334455; padding: 4px; border: 1px solid gray }\n")
	}
	b.WriteString(`</style></head><body>`)
	for i := 0; i < 100; i++ {
		b.WriteString(`<table class="ca"><tr><td class="alt1">x</td><td class="alt2">y</td></tr></table>`)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func BenchmarkParseStylesheet(b *testing.B) {
	src := strings.Repeat(".a .b > .c { margin: 1px 2px 3px; color: red !important }\n", 200)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ParseStylesheet(src).Rules) == 0 {
			b.Fatal("no rules")
		}
	}
}

func BenchmarkSelectorMatch(b *testing.B) {
	doc := html.Parse(benchDoc())
	sel := MustSelector("table.ca td.alt1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(sel.QueryAll(doc)) != 100 {
			b.Fatal("match count wrong")
		}
	}
}

func BenchmarkComputedStyleFullDocument(b *testing.B) {
	doc := html.Parse(benchDoc())
	styler := StylerForDocument(doc)
	body := doc.Body()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bodyStyle := styler.ComputedStyle(body, nil)
		count := 0
		for _, el := range body.Elements("td") {
			_ = styler.ComputedStyle(el, bodyStyle)
			count++
		}
		if count == 0 {
			b.Fatal("no elements")
		}
	}
}
