package css

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"msite/internal/dom"
)

// Combinator relates two compound selectors in a complex selector.
type Combinator int

// Combinators, in CSS notation: ' ', '>', '+', '~'.
const (
	Descendant Combinator = iota + 1
	Child
	Adjacent
	Sibling
)

// Selector is a parsed complex selector (one comma-free selector). Match
// evaluates it right-to-left against a candidate element.
type Selector struct {
	// parts[0] is the key (rightmost) compound; combs[i] relates parts[i]
	// (on the right) to parts[i+1] (on the left).
	parts []compound
	combs []Combinator
	spec  int
	raw   string
}

// String returns the original selector text.
func (s *Selector) String() string { return s.raw }

// Specificity returns the selector's cascade specificity encoded as
// a*1_000_000 + b*1_000 + c (ids, classes/attrs/pseudos, types).
func (s *Selector) Specificity() int { return s.spec }

type compound struct {
	tag     string // "" or "*" matches any
	id      string
	classes []string
	attrs   []attrMatcher
	pseudos []pseudoMatcher
}

type attrMatcher struct {
	key string
	op  string // "", "=", "~=", "^=", "$=", "*=", "|="
	val string
}

type pseudoMatcher struct {
	name string
	arg  string
	// sub is the parsed argument of :not().
	sub *Selector
	// a, b for :nth-child(an+b).
	a, b int
}

// ErrEmptySelector is returned when a selector string contains no simple
// selectors.
var ErrEmptySelector = errors.New("css: empty selector")

// ParseSelectorList parses a comma-separated selector list.
func ParseSelectorList(src string) ([]*Selector, error) {
	var out []*Selector
	for _, part := range splitTopLevel(src, ',') {
		sel, err := ParseSelector(part)
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	if len(out) == 0 {
		return nil, ErrEmptySelector
	}
	return out, nil
}

// ParseSelector parses a single complex selector.
func ParseSelector(src string) (*Selector, error) {
	p := &selParser{src: strings.TrimSpace(src)}
	sel, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("css: parsing selector %q: %w", src, err)
	}
	sel.raw = strings.TrimSpace(src)
	return sel, nil
}

// MustSelector is ParseSelector for known-good selectors in tests and
// internal tables; it panics on error.
func MustSelector(src string) *Selector {
	sel, err := ParseSelector(src)
	if err != nil {
		panic(err)
	}
	return sel
}

type selParser struct {
	src string
	pos int
}

func (p *selParser) parse() (*Selector, error) {
	var (
		parts []compound
		combs []Combinator
	)
	comp, err := p.parseCompound()
	if err != nil {
		return nil, err
	}
	parts = append(parts, comp)
	for {
		comb, ok := p.parseCombinator()
		if !ok {
			break
		}
		next, err := p.parseCompound()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
		combs = append(combs, comb)
	}
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	// Reverse to right-to-left order for matching.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	for i, j := 0, len(combs)-1; i < j; i, j = i+1, j-1 {
		combs[i], combs[j] = combs[j], combs[i]
	}
	sel := &Selector{parts: parts, combs: combs}
	sel.spec = computeSpecificity(parts)
	return sel, nil
}

func (p *selParser) parseCombinator() (Combinator, bool) {
	sawSpace := false
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		sawSpace = true
		p.pos++
	}
	if p.pos >= len(p.src) {
		return 0, false
	}
	switch p.src[p.pos] {
	case '>':
		p.pos++
		p.skipSpace()
		return Child, true
	case '+':
		p.pos++
		p.skipSpace()
		return Adjacent, true
	case '~':
		p.pos++
		p.skipSpace()
		return Sibling, true
	}
	if sawSpace {
		return Descendant, true
	}
	return 0, false
}

func (p *selParser) skipSpace() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *selParser) parseCompound() (compound, error) {
	var c compound
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		switch {
		case ch == '*':
			c.tag = "*"
			p.pos++
		case isIdentStart(ch) && p.pos == start:
			c.tag = strings.ToLower(p.parseIdent())
		case ch == '#':
			p.pos++
			c.id = p.parseIdent()
		case ch == '.':
			p.pos++
			c.classes = append(c.classes, p.parseIdent())
		case ch == '[':
			am, err := p.parseAttr()
			if err != nil {
				return c, err
			}
			c.attrs = append(c.attrs, am)
		case ch == ':':
			pm, err := p.parsePseudo()
			if err != nil {
				return c, err
			}
			c.pseudos = append(c.pseudos, pm)
		default:
			goto done
		}
	}
done:
	if p.pos == start {
		return c, ErrEmptySelector
	}
	return c, nil
}

func isIdentStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '-'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *selParser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *selParser) parseAttr() (attrMatcher, error) {
	p.pos++ // '['
	p.skipSpace()
	var m attrMatcher
	m.key = strings.ToLower(p.parseIdent())
	if m.key == "" {
		return m, errors.New("attribute selector missing name")
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		return m, nil
	}
	// Operator.
	for _, op := range []string{"~=", "^=", "$=", "*=", "|=", "="} {
		if strings.HasPrefix(p.src[p.pos:], op) {
			m.op = op
			p.pos += len(op)
			break
		}
	}
	if m.op == "" {
		return m, fmt.Errorf("bad attribute operator at %d", p.pos)
	}
	p.skipSpace()
	// Value: quoted or bare ident.
	if p.pos < len(p.src) && (p.src[p.pos] == '"' || p.src[p.pos] == '\'') {
		quote := p.src[p.pos]
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		m.val = p.src[start:p.pos]
		if p.pos < len(p.src) {
			p.pos++
		}
	} else {
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != ']' && p.src[p.pos] != ' ' {
			p.pos++
		}
		m.val = p.src[start:p.pos]
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ']' {
		return m, errors.New("unterminated attribute selector")
	}
	p.pos++
	return m, nil
}

func (p *selParser) parsePseudo() (pseudoMatcher, error) {
	p.pos++ // ':'
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++ // '::' pseudo-elements tolerated, treated as pseudo-class
	}
	var m pseudoMatcher
	m.name = strings.ToLower(p.parseIdent())
	if m.name == "" {
		return m, errors.New("empty pseudo-class")
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		depth := 1
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && depth > 0 {
			switch p.src[p.pos] {
			case '(':
				depth++
			case ')':
				depth--
			}
			p.pos++
		}
		if depth != 0 {
			return m, errors.New("unterminated pseudo-class argument")
		}
		m.arg = strings.TrimSpace(p.src[start : p.pos-1])
	}
	switch m.name {
	case "not":
		sub, err := ParseSelector(m.arg)
		if err != nil {
			return m, fmt.Errorf(":not(%s): %w", m.arg, err)
		}
		m.sub = sub
	case "nth-child", "nth-of-type", "nth-last-child":
		a, b, err := parseNth(m.arg)
		if err != nil {
			return m, err
		}
		m.a, m.b = a, b
	case "contains":
		m.arg = strings.Trim(m.arg, `"'`)
	case "first-child", "last-child", "only-child", "empty", "root",
		"first-of-type", "last-of-type", "checked", "disabled", "enabled",
		"link", "visited", "hover", "active", "focus":
		// no argument
	default:
		return m, fmt.Errorf("unsupported pseudo-class :%s", m.name)
	}
	return m, nil
}

// parseNth parses the An+B microsyntax: "odd", "even", "3", "2n", "2n+1",
// "-n+3".
func parseNth(s string) (a, b int, err error) {
	s = strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "")
	switch s {
	case "odd":
		return 2, 1, nil
	case "even":
		return 2, 0, nil
	case "":
		return 0, 0, errors.New("empty nth argument")
	}
	nIdx := strings.IndexByte(s, 'n')
	if nIdx < 0 {
		b, err = strconv.Atoi(s)
		return 0, b, err
	}
	aStr := s[:nIdx]
	switch aStr {
	case "", "+":
		a = 1
	case "-":
		a = -1
	default:
		a, err = strconv.Atoi(aStr)
		if err != nil {
			return 0, 0, fmt.Errorf("bad nth coefficient %q", aStr)
		}
	}
	bStr := s[nIdx+1:]
	if bStr != "" {
		b, err = strconv.Atoi(bStr)
		if err != nil {
			return 0, 0, fmt.Errorf("bad nth offset %q", bStr)
		}
	}
	return a, b, nil
}

func computeSpecificity(parts []compound) int {
	var a, b, c int
	for _, comp := range parts {
		if comp.id != "" {
			a++
		}
		b += len(comp.classes) + len(comp.attrs)
		for _, ps := range comp.pseudos {
			if ps.name == "not" && ps.sub != nil {
				sub := ps.sub.spec
				a += sub / 1_000_000
				b += (sub / 1_000) % 1_000
				c += sub % 1_000
				continue
			}
			b++
		}
		if comp.tag != "" && comp.tag != "*" {
			c++
		}
	}
	return a*1_000_000 + b*1_000 + c
}

// Match reports whether n satisfies the selector.
func (s *Selector) Match(n *dom.Node) bool {
	if n == nil || n.Type != dom.ElementNode {
		return false
	}
	return s.matchFrom(0, n)
}

func (s *Selector) matchFrom(idx int, n *dom.Node) bool {
	if !matchCompound(s.parts[idx], n) {
		return false
	}
	if idx == len(s.parts)-1 {
		return true
	}
	comb := s.combs[idx]
	switch comb {
	case Child:
		p := n.Parent
		if p == nil || p.Type != dom.ElementNode {
			return false
		}
		return s.matchFrom(idx+1, p)
	case Descendant:
		for p := n.Parent; p != nil && p.Type == dom.ElementNode; p = p.Parent {
			if s.matchFrom(idx+1, p) {
				return true
			}
		}
		return false
	case Adjacent:
		return s.matchFrom(idx+1, n.PrevElement())
	case Sibling:
		for p := n.PrevElement(); p != nil; p = p.PrevElement() {
			if s.matchFrom(idx+1, p) {
				return true
			}
		}
		return false
	}
	return false
}

func matchCompound(c compound, n *dom.Node) bool {
	if n == nil || n.Type != dom.ElementNode {
		return false
	}
	if c.tag != "" && c.tag != "*" && n.Tag != c.tag {
		return false
	}
	if c.id != "" && n.ID() != c.id {
		return false
	}
	for _, cls := range c.classes {
		if !n.HasClass(cls) {
			return false
		}
	}
	for _, am := range c.attrs {
		if !matchAttr(am, n) {
			return false
		}
	}
	for _, pm := range c.pseudos {
		if !matchPseudo(pm, n) {
			return false
		}
	}
	return true
}

func matchAttr(m attrMatcher, n *dom.Node) bool {
	val, ok := n.Attr(m.key)
	if !ok {
		return false
	}
	switch m.op {
	case "":
		return true
	case "=":
		return val == m.val
	case "~=":
		for _, w := range strings.Fields(val) {
			if w == m.val {
				return true
			}
		}
		return false
	case "^=":
		return m.val != "" && strings.HasPrefix(val, m.val)
	case "$=":
		return m.val != "" && strings.HasSuffix(val, m.val)
	case "*=":
		return m.val != "" && strings.Contains(val, m.val)
	case "|=":
		return val == m.val || strings.HasPrefix(val, m.val+"-")
	}
	return false
}

func matchPseudo(m pseudoMatcher, n *dom.Node) bool {
	switch m.name {
	case "first-child":
		return n.PrevElement() == nil && n.Parent != nil
	case "last-child":
		return n.NextElement() == nil && n.Parent != nil
	case "only-child":
		return n.Parent != nil && n.PrevElement() == nil && n.NextElement() == nil
	case "empty":
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if c.Type == dom.ElementNode || (c.Type == dom.TextNode && c.Data != "") {
				return false
			}
		}
		return true
	case "root":
		return n.Parent != nil && n.Parent.Type == dom.DocumentNode
	case "first-of-type":
		for s := n.PrevElement(); s != nil; s = s.PrevElement() {
			if s.Tag == n.Tag {
				return false
			}
		}
		return true
	case "last-of-type":
		for s := n.NextElement(); s != nil; s = s.NextElement() {
			if s.Tag == n.Tag {
				return false
			}
		}
		return true
	case "nth-child":
		return matchNth(m.a, m.b, nthIndex(n))
	case "nth-last-child":
		return matchNth(m.a, m.b, nthLastIndex(n))
	case "nth-of-type":
		return matchNth(m.a, m.b, nthOfTypeIndex(n))
	case "not":
		return m.sub != nil && !m.sub.Match(n)
	case "contains":
		return strings.Contains(n.Text(), m.arg)
	case "checked":
		return n.HasAttr("checked")
	case "disabled":
		return n.HasAttr("disabled")
	case "enabled":
		return !n.HasAttr("disabled")
	case "link", "visited", "hover", "active", "focus":
		// Dynamic states never hold in a server-side DOM.
		return false
	}
	return false
}

func nthIndex(n *dom.Node) int {
	i := 1
	for s := n.PrevElement(); s != nil; s = s.PrevElement() {
		i++
	}
	return i
}

func nthLastIndex(n *dom.Node) int {
	i := 1
	for s := n.NextElement(); s != nil; s = s.NextElement() {
		i++
	}
	return i
}

func nthOfTypeIndex(n *dom.Node) int {
	i := 1
	for s := n.PrevElement(); s != nil; s = s.PrevElement() {
		if s.Tag == n.Tag {
			i++
		}
	}
	return i
}

// matchNth reports whether index (1-based) is expressible as a*k+b for
// some non-negative integer k.
func matchNth(a, b, index int) bool {
	if a == 0 {
		return index == b
	}
	d := index - b
	if d%a != 0 {
		return false
	}
	return d/a >= 0
}

// QueryAll returns every element in root's subtree (including root)
// matching the selector, in document order.
func (s *Selector) QueryAll(root *dom.Node) []*dom.Node {
	var out []*dom.Node
	root.Walk(func(n *dom.Node) bool {
		if s.Match(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Query returns the first element in root's subtree matching the selector,
// or nil.
func (s *Selector) Query(root *dom.Node) *dom.Node {
	var found *dom.Node
	root.Walk(func(n *dom.Node) bool {
		if found != nil {
			return false
		}
		if s.Match(n) {
			found = n
			return false
		}
		return true
	})
	return found
}

// splitTopLevel splits src on sep, ignoring separators nested inside
// parentheses, brackets, or quotes.
func splitTopLevel(src string, sep byte) []string {
	var (
		out   []string
		depth int
		quote byte
		start int
	)
	for i := 0; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case sep:
			if depth == 0 {
				part := strings.TrimSpace(src[start:i])
				if part != "" {
					out = append(out, part)
				}
				start = i + 1
			}
		}
	}
	if part := strings.TrimSpace(src[start:]); part != "" {
		out = append(out, part)
	}
	return out
}
