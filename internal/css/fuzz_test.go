package css

import "testing"

// FuzzParseStylesheet: the stylesheet parser is error-tolerant by
// contract — arbitrary input must parse without panicking.
func FuzzParseStylesheet(f *testing.F) {
	seeds := []string{
		"",
		"p { color: red }",
		"@media screen { a, b.c { margin: 1px 2px !important } }",
		"/* unterminated",
		".a { background: url(x;y.png) }",
		"p { color: red",
		"@import url(x.css); @font-face { src: url(y) }",
		"a[href^=\"/\"]:not(.x):nth-child(2n+1) { x: y }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sheet := ParseStylesheet(src)
		if sheet == nil {
			t.Fatal("nil sheet")
		}
	})
}

// FuzzParseSelector: selector parsing either errors or yields a selector
// that can be matched without panicking.
func FuzzParseSelector(f *testing.F) {
	seeds := []string{
		"*", "div p", "a > b + c ~ d", "#x.y[z=\"w\"]:first-child",
		":not(.a)", "td:nth-child(2n+1)", "a:contains('x')",
		"", "(", "[", ":", "a[",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := ParseSelector(src)
		if err != nil {
			return
		}
		if sel.Specificity() < 0 {
			t.Fatalf("negative specificity for %q", src)
		}
	})
}

// FuzzParseValues: length and color parsing must be total functions.
func FuzzParseValues(f *testing.F) {
	for _, s := range []string{"10px", "#fff", "rgb(1,2,3)", "50%", "auto", "-1e99em", "rgba(,,,)"} {
		f.Add(s)
	}
	f.Fuzz(func(_ *testing.T, src string) {
		_, _ = ParseLength(src, 16)
		_, _ = ParseColor(src)
	})
}
