// Package css implements a CSS parser, CSS3 selector engine, and cascade
// producing computed styles. It is the styling substrate for the m.Site
// rendering engine and for selector-based object identification in the
// attribute system (the paper's "new CSS 3 selector support", §3.2).
package css

import (
	"image/color"
	"strconv"
	"strings"
)

// DefaultFontSize is the root font size in CSS pixels, used to resolve
// em units when no base is supplied.
const DefaultFontSize = 16.0

// ParseLength parses a CSS length into CSS pixels. base supplies the
// reference for em and % units (pass the parent's resolved value, or 0 to
// reject relative units). It returns false for unparseable values.
func ParseLength(s string, base float64) (float64, bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "auto" || s == "inherit" {
		return 0, false
	}
	if s == "0" {
		return 0, true
	}
	suffix := ""
	for _, u := range []string{"rem", "px", "pt", "em", "%", "ex", "in", "cm", "mm"} {
		if strings.HasSuffix(s, u) {
			suffix = u
			s = s[:len(s)-len(u)]
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	switch suffix {
	case "", "px":
		return v, true
	case "pt":
		return v * 96.0 / 72.0, true
	case "in":
		return v * 96.0, true
	case "cm":
		return v * 96.0 / 2.54, true
	case "mm":
		return v * 96.0 / 25.4, true
	case "em":
		if base <= 0 {
			base = DefaultFontSize
		}
		return v * base, true
	case "rem":
		return v * DefaultFontSize, true
	case "ex":
		if base <= 0 {
			base = DefaultFontSize
		}
		return v * base * 0.5, true
	case "%":
		if base <= 0 {
			return 0, false
		}
		return v * base / 100.0, true
	}
	return 0, false
}

// namedColors is the subset of CSS named colors observed in template-driven
// forum skins; unknown names fail to parse rather than guessing.
var namedColors = map[string]color.RGBA{
	"black":       {0, 0, 0, 255},
	"white":       {255, 255, 255, 255},
	"red":         {255, 0, 0, 255},
	"green":       {0, 128, 0, 255},
	"blue":        {0, 0, 255, 255},
	"yellow":      {255, 255, 0, 255},
	"orange":      {255, 165, 0, 255},
	"purple":      {128, 0, 128, 255},
	"gray":        {128, 128, 128, 255},
	"grey":        {128, 128, 128, 255},
	"silver":      {192, 192, 192, 255},
	"maroon":      {128, 0, 0, 255},
	"navy":        {0, 0, 128, 255},
	"teal":        {0, 128, 128, 255},
	"olive":       {128, 128, 0, 255},
	"lime":        {0, 255, 0, 255},
	"aqua":        {0, 255, 255, 255},
	"cyan":        {0, 255, 255, 255},
	"fuchsia":     {255, 0, 255, 255},
	"magenta":     {255, 0, 255, 255},
	"brown":       {165, 42, 42, 255},
	"tan":         {210, 180, 140, 255},
	"beige":       {245, 245, 220, 255},
	"ivory":       {255, 255, 240, 255},
	"gold":        {255, 215, 0, 255},
	"pink":        {255, 192, 203, 255},
	"coral":       {255, 127, 80, 255},
	"salmon":      {250, 128, 114, 255},
	"khaki":       {240, 230, 140, 255},
	"indigo":      {75, 0, 130, 255},
	"violet":      {238, 130, 238, 255},
	"crimson":     {220, 20, 60, 255},
	"chocolate":   {210, 105, 30, 255},
	"darkred":     {139, 0, 0, 255},
	"darkblue":    {0, 0, 139, 255},
	"darkgreen":   {0, 100, 0, 255},
	"darkgray":    {169, 169, 169, 255},
	"darkgrey":    {169, 169, 169, 255},
	"lightgray":   {211, 211, 211, 255},
	"lightgrey":   {211, 211, 211, 255},
	"lightblue":   {173, 216, 230, 255},
	"lightgreen":  {144, 238, 144, 255},
	"lightyellow": {255, 255, 224, 255},
	"whitesmoke":  {245, 245, 245, 255},
	"gainsboro":   {220, 220, 220, 255},
	"steelblue":   {70, 130, 180, 255},
	"slategray":   {112, 128, 144, 255},
	"transparent": {0, 0, 0, 0},
}

// ParseColor parses a CSS color: #rgb, #rrggbb, rgb(), rgba(), or a named
// color. It returns false for unparseable values.
func ParseColor(s string) (color.RGBA, bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return color.RGBA{}, false
	}
	if c, ok := namedColors[s]; ok {
		return c, true
	}
	if s[0] == '#' {
		return parseHexColor(s[1:])
	}
	if strings.HasPrefix(s, "rgb(") || strings.HasPrefix(s, "rgba(") {
		return parseRGBFunc(s)
	}
	return color.RGBA{}, false
}

func parseHexColor(hex string) (color.RGBA, bool) {
	switch len(hex) {
	case 3:
		r, okR := hexNibble(hex[0])
		g, okG := hexNibble(hex[1])
		b, okB := hexNibble(hex[2])
		if !okR || !okG || !okB {
			return color.RGBA{}, false
		}
		return color.RGBA{R: r * 17, G: g * 17, B: b * 17, A: 255}, true
	case 6:
		v, err := strconv.ParseUint(hex, 16, 32)
		if err != nil {
			return color.RGBA{}, false
		}
		return color.RGBA{
			R: uint8(v >> 16),
			G: uint8(v >> 8),
			B: uint8(v),
			A: 255,
		}, true
	}
	return color.RGBA{}, false
}

func hexNibble(c byte) (uint8, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func parseRGBFunc(s string) (color.RGBA, bool) {
	open := strings.IndexByte(s, '(')
	close_ := strings.LastIndexByte(s, ')')
	if open < 0 || close_ < open {
		return color.RGBA{}, false
	}
	parts := strings.Split(s[open+1:close_], ",")
	if len(parts) != 3 && len(parts) != 4 {
		return color.RGBA{}, false
	}
	var vals [3]uint8
	for i := 0; i < 3; i++ {
		p := strings.TrimSpace(parts[i])
		if strings.HasSuffix(p, "%") {
			f, err := strconv.ParseFloat(p[:len(p)-1], 64)
			if err != nil || f < 0 {
				return color.RGBA{}, false
			}
			if f > 100 {
				f = 100
			}
			vals[i] = uint8(f * 255 / 100)
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return color.RGBA{}, false
		}
		if v > 255 {
			v = 255
		}
		vals[i] = uint8(v)
	}
	a := uint8(255)
	if len(parts) == 4 {
		f, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil || f < 0 {
			return color.RGBA{}, false
		}
		if f > 1 {
			f = 1
		}
		a = uint8(f * 255)
	}
	return color.RGBA{R: vals[0], G: vals[1], B: vals[2], A: a}, true
}
