package layout

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
)

// genPage builds a random but realistic nested document.
func genPage(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<html><body>")
	var emit func(depth int)
	emit = func(depth int) {
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				fmt.Fprintf(&b, `<div style="padding: %dpx; margin: %dpx">`, rng.Intn(20), rng.Intn(20))
				if depth < 4 {
					emit(depth + 1)
				}
				b.WriteString("</div>")
			case 1:
				b.WriteString("<p>")
				for w := 0; w < rng.Intn(30); w++ {
					b.WriteString("word ")
				}
				b.WriteString("</p>")
			case 2:
				fmt.Fprintf(&b, `<img src="x" width="%d" height="%d">`, 1+rng.Intn(300), 1+rng.Intn(200))
			case 3:
				b.WriteString("<table><tr><td>a</td><td>b</td></tr><tr><td>c</td></tr></table>")
			case 4:
				b.WriteString("<ul><li>one</li><li>two</li></ul>")
			default:
				b.WriteString("<span>inline <b>bold</b> text</span><br>")
			}
		}
	}
	emit(0)
	b.WriteString("</body></html>")
	return b.String()
}

// TestQuickLayoutInvariants: for random documents, every box has finite
// non-negative geometry, and every text run lies within the document's
// vertical extent.
func TestQuickLayoutInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		src := genPage(rng)
		doc := html.Parse(src)
		width := 200 + rng.Intn(1200)
		res := Layout(doc, css.StylerForDocument(doc), Viewport{Width: width})

		if res.Height < 0 {
			t.Fatalf("trial %d: negative height", trial)
		}
		var check func(b *Box)
		check = func(b *Box) {
			if b.W < 0 || b.H < 0 {
				t.Fatalf("trial %d: negative box %vx%v for <%s>", trial, b.W, b.H, tagOf(b))
			}
			for _, v := range []float64{b.X, b.Y, b.W, b.H} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("trial %d: non-finite geometry for <%s>", trial, tagOf(b))
				}
			}
			for _, r := range b.Runs {
				if r.Y < -1 || r.Y > float64(res.Height)+1 {
					t.Fatalf("trial %d: run %q at Y=%v outside doc height %d",
						trial, r.Text, r.Y, res.Height)
				}
				if r.FontSize <= 0 {
					t.Fatalf("trial %d: run with non-positive font size", trial)
				}
			}
			for _, c := range b.Children {
				check(c)
			}
		}
		check(res.Root)
	}
}

// TestQuickBlockStackingMonotone: direct block children of the body
// appear at non-decreasing Y.
func TestQuickBlockStackingMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var b strings.Builder
		b.WriteString("<html><body>")
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, `<div id="d%d" style="height: %dpx">x</div>`, i, 1+rng.Intn(60))
		}
		b.WriteString("</body></html>")
		doc := html.Parse(b.String())
		res := Layout(doc, css.StylerForDocument(doc), Viewport{Width: 600})
		prevY := -1.0
		for i := 0; i < n; i++ {
			box := res.BoxFor(doc.ElementByID(fmt.Sprintf("d%d", i)))
			if box == nil {
				t.Fatalf("trial %d: missing box d%d", trial, i)
			}
			if box.Y < prevY {
				t.Fatalf("trial %d: block d%d at Y=%v above previous %v", trial, i, box.Y, prevY)
			}
			prevY = box.Y
		}
	}
}

func tagOf(b *Box) string {
	if b.Node == nil {
		return "anon"
	}
	return b.Node.Tag
}
