package layout

import (
	"strings"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
)

func benchForumish() string {
	var b strings.Builder
	b.WriteString(`<html><head><style>
.tborder { border: 1px solid #888; background-color: #eef }
.smallfont { font-size: 11px }
</style></head><body>`)
	for i := 0; i < 30; i++ {
		b.WriteString(`<table class="tborder" width="100%"><tr>
<td><img src="i.gif" width="24" height="24"></td>
<td><a href="/f"><b>Forum name here</b></a><div class="smallfont">Description of the forum with a full sentence of text to wrap.</div></td>
<td><div class="smallfont">Today 09:14 AM by someone</div></td>
</tr></table>`)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func BenchmarkLayoutForumPage(b *testing.B) {
	doc := html.Parse(benchForumish())
	styler := css.StylerForDocument(doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Layout(doc, styler, Viewport{Width: 1024})
		if res.Height <= 0 {
			b.Fatal("no height")
		}
	}
}

func BenchmarkLayoutNarrowReflow(b *testing.B) {
	doc := html.Parse(benchForumish())
	styler := css.StylerForDocument(doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Layout(doc, styler, Viewport{Width: 320})
		if res.Height <= 0 {
			b.Fatal("no height")
		}
	}
}

func BenchmarkTextWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if TextWidth("General Woodworking discussion", 13) <= 0 {
			b.Fatal("zero width")
		}
	}
}
