package layout

import (
	"testing"

	"msite/internal/css"
	"msite/internal/html"
)

func doLayout(t *testing.T, src string, width int) *Result {
	t.Helper()
	doc := html.Parse(src)
	styler := css.StylerForDocument(doc)
	return Layout(doc, styler, Viewport{Width: width})
}

func TestMetrics(t *testing.T) {
	if got := TextWidth("abcd", 10); got != 4*6*1.0 {
		t.Fatalf("TextWidth = %v", got)
	}
	if CharWidth(20) != 12 {
		t.Fatalf("CharWidth(20) = %v", CharWidth(20))
	}
	if LineHeight(16) != 20 {
		t.Fatalf("LineHeight = %v", LineHeight(16))
	}
	if GlyphScale(0) != 1.6 {
		t.Fatalf("GlyphScale fallback = %v", GlyphScale(0))
	}
	// Unicode counts runes, not bytes.
	if TextWidth("héllo", 10) != TextWidth("hello", 10) {
		t.Fatal("rune counting wrong")
	}
}

func TestBlockStacking(t *testing.T) {
	res := doLayout(t, `<html><body><div id="a" style="height: 50px"></div><div id="b" style="height: 30px"></div></body></html>`, 800)
	ax, ay, aw, ah, ok := regionByID(t, res, "a")
	if !ok {
		t.Fatal("no box for a")
	}
	if ax != 0 || ay != 0 || aw != 800 || ah != 50 {
		t.Fatalf("a = %d,%d %dx%d", ax, ay, aw, ah)
	}
	_, by, _, bh, _ := regionByID(t, res, "b")
	if by != 50 || bh != 30 {
		t.Fatalf("b: y=%d h=%d", by, bh)
	}
	if res.Height != 80 {
		t.Fatalf("doc height = %d", res.Height)
	}
}

func TestMarginPaddingBorder(t *testing.T) {
	res := doLayout(t, `<html><body>
		<div id="x" style="margin: 10px; padding: 5px; border: 2px solid black; height: 20px"></div>
	</body></html>`, 400)
	x, y, w, h, ok := regionByID(t, res, "x")
	if !ok {
		t.Fatal("no box")
	}
	if x != 10 || y != 10 {
		t.Fatalf("origin = %d,%d", x, y)
	}
	// width = 400 - 2*margin; border-box includes border+padding
	if w != 380 {
		t.Fatalf("w = %d", w)
	}
	if h != 20+2*5+2*2 {
		t.Fatalf("h = %d", h)
	}
}

func TestExplicitWidth(t *testing.T) {
	res := doLayout(t, `<html><body><div id="x" style="width: 200px; height: 10px"></div></body></html>`, 800)
	_, _, w, _, _ := regionByID(t, res, "x")
	if w != 200 {
		t.Fatalf("w = %d", w)
	}
}

func TestPercentWidth(t *testing.T) {
	res := doLayout(t, `<html><body><div id="x" style="width: 50%; height: 10px"></div></body></html>`, 800)
	_, _, w, _, _ := regionByID(t, res, "x")
	if w != 400 {
		t.Fatalf("w = %d", w)
	}
}

func TestTextWrapping(t *testing.T) {
	// 20 words of 4 chars at 16px: each word 4*6*1.6=38.4px, space 9.6px.
	// In a 200px container about 4 words fit per line → 5 lines.
	src := `<html><body><p id="p">` +
		"word word word word word word word word word word " +
		"word word word word word word word word word word" +
		`</p></body></html>`
	res := doLayout(t, src, 200)
	runs := res.Runs()
	if len(runs) != 20 {
		t.Fatalf("runs = %d", len(runs))
	}
	lines := map[float64]bool{}
	for _, r := range runs {
		lines[r.Y] = true
		if r.X < 0 || r.X+r.Width() > 210 {
			t.Fatalf("run outside container: %+v", r)
		}
	}
	if len(lines) < 4 {
		t.Fatalf("lines = %d, want wrapping", len(lines))
	}
}

func TestDisplayNoneSkipped(t *testing.T) {
	res := doLayout(t, `<html><body>
		<div id="gone" style="display: none"><p>hidden text</p></div>
		<script>var x = "script text";</script>
		<div id="shown">visible</div>
	</body></html>`, 800)
	if res.BoxFor(nil) != nil {
		t.Fatal("nil lookup should be nil")
	}
	if _, _, _, _, ok := regionByID(t, res, "gone"); ok {
		t.Fatal("display:none produced a box")
	}
	for _, r := range res.Runs() {
		if r.Text == "hidden" || r.Text == "script" {
			t.Fatalf("hidden content rendered: %+v", r)
		}
	}
}

func TestInlineElementBounds(t *testing.T) {
	res := doLayout(t, `<html><body><p>Click <a id="lnk" href="/x">here now</a> please</p></body></html>`, 800)
	x, y, w, h, ok := regionByID(t, res, "lnk")
	if !ok {
		t.Fatal("no box for inline link")
	}
	if w <= 0 || h <= 0 {
		t.Fatalf("link bounds %d,%d %dx%d", x, y, w, h)
	}
	// "here now" is 8 chars + space at 16px
	wantW := int(TextWidth("here", 16) + CharWidth(16) + TextWidth("now", 16))
	if w < wantW-2 || w > wantW+2 {
		t.Fatalf("link w = %d, want ≈%d", w, wantW)
	}
}

func TestImageAtom(t *testing.T) {
	res := doLayout(t, `<html><body><img id="logo" src="l.png" width="120" height="40"></body></html>`, 800)
	_, _, w, h, ok := regionByID(t, res, "logo")
	if !ok || w != 120 || h != 40 {
		t.Fatalf("img = %dx%d ok=%v", w, h, ok)
	}
}

func TestImageDefaultSize(t *testing.T) {
	res := doLayout(t, `<html><body><img id="i" src="x.png"></body></html>`, 800)
	_, _, w, h, _ := regionByID(t, res, "i")
	if w != 80 || h != 60 {
		t.Fatalf("default img = %dx%d", w, h)
	}
}

func TestFormControlAtoms(t *testing.T) {
	res := doLayout(t, `<html><body>
		<input id="t" type="text" size="10">
		<input id="c" type="checkbox">
		<input id="s" type="submit" value="Log in">
		<input id="h" type="hidden" value="x">
		<select id="sel"><option>a</option></select>
	</body></html>`, 800)
	if _, _, w, _, _ := regionByID(t, res, "t"); w <= 0 {
		t.Fatal("text input no width")
	}
	if _, _, w, h, _ := regionByID(t, res, "c"); w != 13 || h != 13 {
		t.Fatalf("checkbox = %dx%d", w, h)
	}
	if _, _, w, _, _ := regionByID(t, res, "s"); w <= 16 {
		t.Fatal("submit too narrow")
	}
	if _, _, _, _, ok := regionByID(t, res, "h"); ok {
		t.Fatal("hidden input should produce no box")
	}
	if _, _, w, _, _ := regionByID(t, res, "sel"); w != 110 {
		t.Fatal("select width wrong")
	}
}

func TestBrForcesLine(t *testing.T) {
	res := doLayout(t, `<html><body><p>one<br>two</p></body></html>`, 800)
	runs := res.Runs()
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Y == runs[1].Y {
		t.Fatal("br did not break line")
	}
}

func TestTableLayout(t *testing.T) {
	res := doLayout(t, `<html><body>
	<table id="tbl" width="600" cellspacing="0" cellpadding="0">
		<tr><td id="c1">a</td><td id="c2">b</td><td id="c3">c</td></tr>
		<tr><td id="c4">longer content here</td><td>e</td><td>f</td></tr>
	</table></body></html>`, 800)
	_, _, w, _, ok := regionByID(t, res, "tbl")
	if !ok || w != 600 {
		t.Fatalf("table w = %d", w)
	}
	x1, y1, w1, _, _ := regionByID(t, res, "c1")
	x2, y2, _, _, _ := regionByID(t, res, "c2")
	x3, _, _, _, _ := regionByID(t, res, "c3")
	if y1 != y2 {
		t.Fatal("cells not on same row")
	}
	if !(x1 < x2 && x2 < x3) {
		t.Fatalf("cells not left-to-right: %d %d %d", x1, x2, x3)
	}
	if w1 != 200 {
		t.Fatalf("equal column width = %d, want 200", w1)
	}
	_, y4, _, _, _ := regionByID(t, res, "c4")
	if y4 <= y1 {
		t.Fatal("second row not below first")
	}
}

func TestTableColspan(t *testing.T) {
	res := doLayout(t, `<html><body>
	<table width="400" cellspacing="0" cellpadding="0">
		<tr><td id="span2" colspan="2">ab</td><td id="solo">c</td></tr>
	</table></body></html>`, 800)
	_, _, w, _, _ := regionByID(t, res, "span2")
	if w < 260 || w > 270 {
		t.Fatalf("colspan width = %d, want ≈266", w)
	}
}

func TestTableRowGroups(t *testing.T) {
	res := doLayout(t, `<html><body>
	<table><thead><tr><th id="h">H</th></tr></thead>
	<tbody><tr><td id="d">D</td></tr></tbody></table></body></html>`, 400)
	_, hy, _, _, ok1 := regionByID(t, res, "h")
	_, dy, _, _, ok2 := regionByID(t, res, "d")
	if !ok1 || !ok2 || dy <= hy {
		t.Fatal("thead/tbody rows wrong")
	}
}

func TestTextAlignCenter(t *testing.T) {
	res := doLayout(t, `<html><body><p style="text-align: center">mid</p></body></html>`, 800)
	runs := res.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	center := runs[0].X + runs[0].Width()/2
	if center < 390 || center > 410 {
		t.Fatalf("center = %v", center)
	}
}

func TestListIndent(t *testing.T) {
	res := doLayout(t, `<html><body><ul><li id="li">item</li></ul></body></html>`, 800)
	x, _, _, _, _ := regionByID(t, res, "li")
	if x < 40 {
		t.Fatalf("li x = %d, want indent ≥40", x)
	}
}

func TestStyledFontAffectsRuns(t *testing.T) {
	res := doLayout(t, `<html><head><style>
		.big { font-size: 32px; color: red }
		b { }
	</style></head><body><p><span class="big">L</span> <b>B</b> n</p></body></html>`, 800)
	runs := res.Runs()
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].FontSize != 32 {
		t.Fatalf("font size = %v", runs[0].FontSize)
	}
	if runs[0].Color.R != 255 || runs[0].Color.G != 0 {
		t.Fatalf("color = %v", runs[0].Color)
	}
	if !runs[1].Bold {
		t.Fatal("b should be bold")
	}
	if runs[2].Bold {
		t.Fatal("plain text should not be bold")
	}
}

func TestHeadingsLargerThanBody(t *testing.T) {
	res := doLayout(t, `<html><body><h1>Big</h1><p>small</p></body></html>`, 800)
	runs := res.Runs()
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].FontSize <= runs[1].FontSize {
		t.Fatal("h1 not larger than p")
	}
}

func TestEmptyDocument(t *testing.T) {
	res := doLayout(t, ``, 800)
	if res == nil || res.Width != 800 {
		t.Fatal("empty doc should still lay out")
	}
}

func TestZeroViewportUsesDefault(t *testing.T) {
	doc := html.Parse(`<html><body><p>x</p></body></html>`)
	res := Layout(doc, nil, Viewport{})
	if res.Width != DefaultViewport.Width {
		t.Fatalf("width = %d", res.Width)
	}
}

func TestCountBoxesAndRuns(t *testing.T) {
	res := doLayout(t, `<html><body><div><p>a b c</p><p>d</p></div></body></html>`, 800)
	if res.CountBoxes() < 4 {
		t.Fatalf("boxes = %d", res.CountBoxes())
	}
	if len(res.Runs()) != 4 {
		t.Fatalf("runs = %d", len(res.Runs()))
	}
}

func TestNestedTablesDoNotPanic(t *testing.T) {
	res := doLayout(t, `<html><body>
	<table><tr><td><table><tr><td id="inner">deep</td></tr></table></td></tr></table>
	</body></html>`, 600)
	if _, _, _, _, ok := regionByID(t, res, "inner"); !ok {
		t.Fatal("inner cell missing")
	}
}

func regionByID(t *testing.T, res *Result, id string) (x, y, w, h int, ok bool) {
	t.Helper()
	var node = res.Root.Node.Root().ElementByID(id)
	if node == nil {
		return 0, 0, 0, 0, false
	}
	return res.Region(node)
}

func TestLinkUnderline(t *testing.T) {
	res := doLayout(t, `<html><body>
		<p><a href="/x">linked</a> plain <a href="/y" style="text-decoration: none">bare</a>
		<span style="text-decoration: underline">deco</span></p>
	</body></html>`, 800)
	byText := map[string]TextRun{}
	for _, r := range res.Runs() {
		byText[r.Text] = r
	}
	if !byText["linked"].Underline {
		t.Fatal("anchor text should underline")
	}
	if byText["plain"].Underline {
		t.Fatal("plain text should not underline")
	}
	if byText["bare"].Underline {
		t.Fatal("text-decoration: none should suppress underline")
	}
	if !byText["deco"].Underline {
		t.Fatal("explicit underline ignored")
	}
}
