package layout

import (
	"testing"
)

func TestFloatLeftPair(t *testing.T) {
	res := doLayout(t, `<html><body>
		<div id="a" style="float: left; width: 200px; height: 50px"></div>
		<div id="b" style="float: left; width: 300px; height: 80px"></div>
		<div id="after" style="height: 10px"></div>
	</body></html>`, 1000)
	ax, ay, aw, _, _ := regionByID(t, res, "a")
	bx, by, _, _, _ := regionByID(t, res, "b")
	if ax != 0 || aw != 200 {
		t.Fatalf("a = x%d w%d", ax, aw)
	}
	if bx != 200 {
		t.Fatalf("b x = %d, want beside a", bx)
	}
	if ay != by {
		t.Fatal("floats not on same band")
	}
	// In-flow content clears below the tallest float.
	_, afterY, _, _, _ := regionByID(t, res, "after")
	if afterY != 80 {
		t.Fatalf("after y = %d, want 80", afterY)
	}
}

func TestFloatRight(t *testing.T) {
	res := doLayout(t, `<html><body>
		<div id="l" style="float: left; width: 440px; height: 60px"></div>
		<div id="r" style="float: right; width: 520px; height: 60px"></div>
	</body></html>`, 1000)
	lx, _, _, _, _ := regionByID(t, res, "l")
	rx, _, rw, _, _ := regionByID(t, res, "r")
	if lx != 0 {
		t.Fatalf("left float x = %d", lx)
	}
	if rx+rw != 1000 {
		t.Fatalf("right float edge = %d, want 1000", rx+rw)
	}
	if res.Height != 60 {
		t.Fatalf("container height = %d, want float height", res.Height)
	}
}

func TestFloatTwoPaneCraigslist(t *testing.T) {
	// The §4.5 adapted layout: listing pane left, detail pane right.
	res := doLayout(t, `<html><head><style>
		#listings { float: left; width: 44%; height: 700px }
		#pane { float: right; width: 52%; height: 700px }
	</style></head><body>
		<div id="listings"><p>ad one</p><p>ad two</p></div>
		<div id="pane"><p>detail</p></div>
	</body></html>`, 1000)
	lx, ly, lw, _, _ := regionByID(t, res, "listings")
	px, py, pw, _, _ := regionByID(t, res, "pane")
	if ly != py {
		t.Fatal("panes not side by side")
	}
	if lw != 440 || pw != 520 {
		t.Fatalf("pane widths = %d, %d", lw, pw)
	}
	if lx+lw > px {
		t.Fatalf("panes overlap: left ends %d, right starts %d", lx+lw, px)
	}
}

func TestFloatWithoutWidthFallsBack(t *testing.T) {
	// A widthless float degrades to a normal full-width block.
	res := doLayout(t, `<html><body>
		<div id="f" style="float: left; height: 20px"></div>
		<div id="next" style="height: 10px"></div>
	</body></html>`, 600)
	_, _, fw, _, _ := regionByID(t, res, "f")
	if fw != 600 {
		t.Fatalf("widthless float w = %d", fw)
	}
	_, nextY, _, _, _ := regionByID(t, res, "next")
	if nextY != 20 {
		t.Fatalf("next y = %d", nextY)
	}
}

func TestFloatTextClears(t *testing.T) {
	res := doLayout(t, `<html><body>
		<div id="f" style="float: left; width: 100px; height: 40px"></div>
		plain text after the float
	</body></html>`, 600)
	runs := res.Runs()
	if len(runs) == 0 {
		t.Fatal("no text")
	}
	if runs[0].Y < 40 {
		t.Fatalf("text at Y=%v should clear the float", runs[0].Y)
	}
}

func TestFloatRunsShifted(t *testing.T) {
	res := doLayout(t, `<html><body>
		<div style="float: left; width: 100px; height: 30px"></div>
		<div id="f2" style="float: left; width: 200px; height: 30px"><p>inside</p></div>
	</body></html>`, 600)
	// The second float's text must be shifted along with its box.
	runs := res.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].X < 100 {
		t.Fatalf("run X = %v, want shifted right of first float", runs[0].X)
	}
}
