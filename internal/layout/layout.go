package layout

import (
	"image/color"
	"strconv"
	"strings"

	"msite/internal/css"
	"msite/internal/dom"
)

// Viewport configures the layout width in CSS pixels.
type Viewport struct {
	Width int
}

// DefaultViewport is a conventional desktop layout width.
var DefaultViewport = Viewport{Width: 1024}

// Box is one laid-out box with absolute border-box coordinates.
type Box struct {
	Node  *dom.Node // nil for anonymous boxes
	Style css.Style

	X, Y, W, H float64

	Children []*Box
	Runs     []TextRun
}

// TextRun is one positioned fragment of text on a single line.
type TextRun struct {
	Text     string
	Node     *dom.Node // owning text node
	X, Y     float64   // top-left of the painted glyphs
	FontSize float64
	Bold     bool
	Italic   bool
	// Underline paints a rule under the glyphs (anchor text, or
	// text-decoration: underline).
	Underline bool
	Color     color.RGBA
}

// Width returns the run's painted width in CSS pixels.
func (r TextRun) Width() float64 { return TextWidth(r.Text, r.FontSize) }

// Height returns the run's painted height in CSS pixels.
func (r TextRun) Height() float64 { return GlyphHeight(r.FontSize) }

// Result is the outcome of laying out a document.
type Result struct {
	Root *Box
	// Width and Height are the document pixel extents.
	Width  int
	Height int

	byNode map[*dom.Node]*Box
}

// BoxFor returns the box generated for a DOM node, or nil if the node
// produced no box (display:none, non-rendered, or not in this layout).
func (r *Result) BoxFor(n *dom.Node) *Box {
	return r.byNode[n]
}

// Region returns the integer pixel rectangle of the box generated for n.
// This is the coordinate query the snapshot image-map generator uses.
func (r *Result) Region(n *dom.Node) (x, y, w, h int, ok bool) {
	b := r.byNode[n]
	if b == nil {
		return 0, 0, 0, 0, false
	}
	return int(b.X), int(b.Y), int(b.W + 0.5), int(b.H + 0.5), true
}

// Runs returns every text run in the layout, in paint order.
func (r *Result) Runs() []TextRun {
	var out []TextRun
	var walk func(b *Box)
	walk = func(b *Box) {
		out = append(out, b.Runs...)
		for _, c := range b.Children {
			walk(c)
		}
	}
	walk(r.Root)
	return out
}

// CountBoxes returns the number of boxes in the layout tree.
func (r *Result) CountBoxes() int {
	n := 0
	var walk func(b *Box)
	walk = func(b *Box) {
		n++
		for _, c := range b.Children {
			walk(c)
		}
	}
	walk(r.Root)
	return n
}

// Layout computes the box tree for a parsed document. styler may be nil,
// in which case only default and inline styles apply.
func Layout(doc *dom.Node, styler *css.Styler, vp Viewport) *Result {
	if vp.Width <= 0 {
		vp = DefaultViewport
	}
	if styler == nil {
		styler = css.NewStyler()
	}
	ctx := &lctx{styler: styler, byNode: make(map[*dom.Node]*Box)}

	body := doc.Body()
	root := body
	if root == nil {
		root = doc.DocumentElement()
	}
	if root == nil {
		root = doc
	}
	var rootStyle css.Style
	if root.Type == dom.ElementNode {
		rootStyle = ctx.styler.ComputedStyle(root, nil)
	} else {
		rootStyle = css.Style{"display": "block"}
	}
	box := ctx.layoutBlock(root, rootStyle, 0, 0, float64(vp.Width))
	res := &Result{
		Root:   box,
		Width:  vp.Width,
		Height: int(box.H + 0.5),
		byNode: ctx.byNode,
	}
	return res
}

type lctx struct {
	styler *css.Styler
	byNode map[*dom.Node]*Box
}

// edges resolves margin, border, and padding for a style.
type edges struct {
	mt, mr, mb, ml float64
	bt, br, bb, bl float64
	pt, pr, pb, pl float64
}

func resolveEdges(style css.Style, availW, fontSize float64) edges {
	get := func(prop string) float64 {
		v, ok := css.ParseLength(style.Get(prop, ""), availW)
		if !ok {
			return 0
		}
		if v < 0 {
			return 0
		}
		return v
	}
	borderW := func(side string) float64 {
		st := style.Get("border-"+side+"-style", "")
		if st == "none" || st == "hidden" {
			return 0
		}
		w, ok := css.ParseLength(style.Get("border-"+side+"-width", ""), 0)
		if !ok || w < 0 {
			if st != "" { // style set without width: medium
				return 3
			}
			return 0
		}
		return w
	}
	_ = fontSize
	return edges{
		mt: get("margin-top"), mr: get("margin-right"),
		mb: get("margin-bottom"), ml: get("margin-left"),
		bt: borderW("top"), br: borderW("right"),
		bb: borderW("bottom"), bl: borderW("left"),
		pt: get("padding-top"), pr: get("padding-right"),
		pb: get("padding-bottom"), pl: get("padding-left"),
	}
}

func fontSizeOf(style css.Style) float64 {
	v, ok := css.ParseLength(style.Get("font-size", ""), css.DefaultFontSize)
	if !ok || v <= 0 {
		return css.DefaultFontSize
	}
	return v
}

// underlineOf reports whether text in this style paints an underline:
// an explicit text-decoration, or anchor-element default (unless
// decoration is explicitly none).
func underlineOf(style css.Style, node *dom.Node) bool {
	deco := style.Get("text-decoration", "")
	if strings.Contains(deco, "underline") {
		return true
	}
	if deco == "none" {
		return false
	}
	for p := node; p != nil && p.Type != dom.DocumentNode; p = p.Parent {
		if p.Type == dom.ElementNode && p.Tag == "a" && p.HasAttr("href") {
			return true
		}
	}
	return false
}

func colorOf(style css.Style) color.RGBA {
	c, ok := css.ParseColor(style.Get("color", ""))
	if !ok {
		return color.RGBA{A: 255}
	}
	return c
}

// layoutBlock lays out n as a block at (x, y) with available outer width
// availW. The returned box has final geometry; (x, y) is the margin-box
// origin, and the box's X/Y are the border-box origin.
func (c *lctx) layoutBlock(n *dom.Node, style css.Style, x, y, availW float64) *Box {
	e := resolveEdges(style, availW, fontSizeOf(style))

	// Default list indentation, as browsers apply via UA stylesheet.
	if (n.Tag == "ul" || n.Tag == "ol") && style.Get("padding-left", "") == "" {
		e.pl += 40
	}

	// Resolve width.
	contentAvail := availW - e.ml - e.mr - e.bl - e.br - e.pl - e.pr
	if contentAvail < 0 {
		contentAvail = 0
	}
	contentW := contentAvail
	if w, ok := css.ParseLength(style.Get("width", widthAttr(n)), availW); ok && w >= 0 {
		contentW = w
	}

	box := &Box{
		Node:  n,
		Style: style,
		X:     x + e.ml,
		Y:     y + e.mt,
		W:     contentW + e.bl + e.br + e.pl + e.pr,
	}
	if n != nil {
		c.byNode[n] = box
	}

	contentX := box.X + e.bl + e.pl
	contentY := box.Y + e.bt + e.pt

	var contentH float64
	switch {
	case n.Tag == "table":
		contentH = c.layoutTable(box, n, style, contentX, contentY, contentW)
	case n.Tag == "hr":
		contentH = 2
	default:
		contentH = c.layoutFlow(box, n, style, contentX, contentY, contentW)
	}

	if h, ok := css.ParseLength(style.Get("height", heightAttr(n)), 0); ok && h > contentH {
		contentH = h
	}
	box.H = contentH + e.bt + e.bb + e.pt + e.pb
	return box
}

// widthAttr maps presentational width attributes (vBulletin-era markup)
// into the style system. Percentages pass through for ParseLength.
func widthAttr(n *dom.Node) string {
	if n == nil {
		return ""
	}
	switch n.Tag {
	case "table", "td", "th", "img", "iframe":
		return n.AttrOr("width", "")
	}
	return ""
}

func heightAttr(n *dom.Node) string {
	if n == nil {
		return ""
	}
	switch n.Tag {
	case "table", "td", "th", "img", "iframe":
		return n.AttrOr("height", "")
	}
	return ""
}

// layoutFlow lays out mixed block/inline children inside a content box
// and returns the content height.
//
// Floats are supported in the simplified form template-era pages rely
// on: a floated block with an explicit width is taken out of the normal
// flow and stacked against the left or right content edge; consecutive
// floats on a side stack horizontally (the classic two-pane layout), and
// the first subsequent in-flow content clears below the tallest float.
func (c *lctx) layoutFlow(box *Box, n *dom.Node, style css.Style, contentX, contentY, contentW float64) float64 {
	cur := contentY
	line := newLineCtx(box, style, contentX, cur, contentW)

	var floatLeftW, floatRightW, floatMaxY float64

	flushLine := func() {
		cur = line.finish()
	}
	clearFloats := func() {
		if floatMaxY > cur {
			cur = floatMaxY
			line = newLineCtx(box, style, contentX, cur, contentW)
		}
		floatLeftW, floatRightW, floatMaxY = 0, 0, 0
	}

	for child := n.FirstChild; child != nil; child = child.NextSibling {
		switch child.Type {
		case dom.TextNode:
			if floatMaxY > 0 && len(strings.Fields(child.Data)) > 0 {
				flushLine()
				clearFloats()
			}
			line.addText(child, style)
		case dom.ElementNode:
			childStyle := c.styler.ComputedStyle(child, style)
			disp := childStyle.Get("display", "inline")
			if disp == "none" {
				continue
			}
			side := childStyle.Get("float", "")
			floatW, hasW := css.ParseLength(childStyle.Get("width", widthAttr(child)), contentW)
			if (side == "left" || side == "right") && hasW && floatW > 0 &&
				(disp == "block" || disp == "table" || disp == "inline-block") {
				flushLine()
				cb := c.layoutBlock(child, childStyle, contentX, cur, contentW)
				ce := resolveEdges(childStyle, contentW, fontSizeOf(childStyle))
				outerW := cb.W + ce.ml + ce.mr
				var dx float64
				if side == "left" {
					dx = floatLeftW
					floatLeftW += outerW
				} else {
					dx = contentW - floatRightW - outerW
					floatRightW += outerW
				}
				shiftBox(cb, dx, 0)
				box.Children = append(box.Children, cb)
				if bottom := cb.Y + cb.H + ce.mb; bottom > floatMaxY {
					floatMaxY = bottom
				}
				continue // floats do not advance the flow
			}
			switch disp {
			case "block", "table", "table-row", "table-cell":
				// table-row/cell outside a table degrade to blocks.
				flushLine()
				clearFloats()
				cb := c.layoutBlock(child, childStyle, contentX, cur, contentW)
				box.Children = append(box.Children, cb)
				ce := resolveEdges(childStyle, contentW, fontSizeOf(childStyle))
				cur = cb.Y + cb.H + ce.mb
				line = newLineCtx(box, style, contentX, cur, contentW)
			default: // inline, inline-block
				c.inlineElement(child, childStyle, line)
			}
		}
	}
	flushLine()
	if floatMaxY > cur {
		cur = floatMaxY
	}
	h := cur - contentY
	if h < 0 {
		h = 0
	}
	return h
}

// shiftBox translates a laid-out box tree (and its text runs) by
// (dx, dy).
func shiftBox(b *Box, dx, dy float64) {
	if dx == 0 && dy == 0 {
		return
	}
	b.X += dx
	b.Y += dy
	for i := range b.Runs {
		b.Runs[i].X += dx
		b.Runs[i].Y += dy
	}
	for _, c := range b.Children {
		shiftBox(c, dx, dy)
	}
}

// inlineElement feeds an inline element's content into the line context,
// then synthesizes a bounding box for the element so image maps can
// reference it.
func (c *lctx) inlineElement(n *dom.Node, style css.Style, line *lineCtx) {
	if n.Tag == "br" {
		line.breakLine()
		return
	}
	var bounds rect
	if atom, ok := atomSize(n, style); ok {
		r := line.placeAtom(atom.w, atom.h)
		bounds.merge(r)
	} else {
		start := len(line.box.Runs)
		pendStart := len(line.pending)
		for child := n.FirstChild; child != nil; child = child.NextSibling {
			switch child.Type {
			case dom.TextNode:
				line.addText(child, style)
			case dom.ElementNode:
				childStyle := c.styler.ComputedStyle(child, style)
				disp := childStyle.Get("display", "inline")
				if disp == "none" {
					continue
				}
				c.inlineElement(child, childStyle, line)
			}
		}
		for _, r := range line.box.Runs[start:] {
			bounds.merge(rect{r.X, r.Y, r.X + r.Width(), r.Y + r.Height()})
		}
		// Include pending (unflushed) words added by this element on the
		// open line. A wrap inside the element may have flushed earlier
		// pending entries into Runs, which the loop above already covers.
		if pendStart > len(line.pending) {
			pendStart = 0
		}
		for _, w := range line.pending[pendStart:] {
			bounds.merge(rect{w.x, line.y, w.x + w.width, line.y + GlyphHeight(w.fontSize)})
		}
	}
	if bounds.valid() {
		eb := &Box{
			Node:  n,
			Style: style,
			X:     bounds.x0,
			Y:     bounds.y0,
			W:     bounds.x1 - bounds.x0,
			H:     bounds.y1 - bounds.y0,
		}
		line.box.Children = append(line.box.Children, eb)
		c.byNode[n] = eb
	}
}

type atom struct{ w, h float64 }

// atomSize returns the replaced-element box for atoms (images, form
// controls) or ok=false for ordinary inline elements.
func atomSize(n *dom.Node, style css.Style) (atom, bool) {
	attrF := func(key string, def float64) float64 {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(n.AttrOr(key, ""), "px"), 64); err == nil && v > 0 {
			return v
		}
		return def
	}
	switch n.Tag {
	case "img", "iframe", "embed", "object", "video", "canvas":
		w := attrF("width", 80)
		h := attrF("height", 60)
		if sv, ok := css.ParseLength(style.Get("width", ""), 0); ok && sv > 0 {
			w = sv
		}
		if sv, ok := css.ParseLength(style.Get("height", ""), 0); ok && sv > 0 {
			h = sv
		}
		return atom{w, h}, true
	case "input":
		switch strings.ToLower(n.AttrOr("type", "text")) {
		case "checkbox", "radio":
			return atom{13, 13}, true
		case "hidden":
			return atom{0, 0}, true
		case "submit", "button", "reset":
			label := n.AttrOr("value", "Submit")
			return atom{TextWidth(label, 13) + 16, 22}, true
		case "image":
			return atom{attrF("width", 80), attrF("height", 22)}, true
		default:
			size := attrF("size", 20)
			return atom{size * CharWidth(13), 22}, true
		}
	case "select":
		return atom{110, 22}, true
	case "textarea":
		cols := attrF("cols", 30)
		rows := attrF("rows", 4)
		return atom{cols * CharWidth(13), rows * LineHeight(13)}, true
	case "button":
		return atom{TextWidth(n.Text(), 13) + 16, 22}, true
	}
	return atom{}, false
}

// layoutTable lays out table rows and cells and returns the content
// height. Presentational cellpadding/cellspacing attributes are honored,
// since the template-driven sites m.Site targets rely on them.
func (c *lctx) layoutTable(box *Box, n *dom.Node, style css.Style, contentX, contentY, contentW float64) float64 {
	spacing := 2.0
	if v, err := strconv.ParseFloat(n.AttrOr("cellspacing", ""), 64); err == nil && v >= 0 {
		spacing = v
	}
	padding := 1.0
	if v, err := strconv.ParseFloat(n.AttrOr("cellpadding", ""), 64); err == nil && v >= 0 {
		padding = v
	}

	rows := tableRows(n)
	if len(rows) == 0 {
		return 0
	}
	// Column count = max cells in any row (colspan counts extra).
	cols := 0
	for _, row := range rows {
		span := 0
		for _, cell := range rowCells(row) {
			span += cellSpan(cell)
		}
		if span > cols {
			cols = span
		}
	}
	if cols == 0 {
		return 0
	}
	colW := (contentW - spacing*float64(cols+1)) / float64(cols)
	if colW < 0 {
		colW = 0
	}

	cur := contentY + spacing
	for _, row := range rows {
		rowStyle := c.styler.ComputedStyle(row, style)
		rowBox := &Box{Node: row, Style: rowStyle, X: contentX, Y: cur, W: contentW}
		c.byNode[row] = rowBox
		box.Children = append(box.Children, rowBox)

		cells := rowCells(row)
		maxH := 0.0
		cx := contentX + spacing
		for _, cell := range cells {
			span := cellSpan(cell)
			cw := colW*float64(span) + spacing*float64(span-1)
			cellStyle := c.styler.ComputedStyle(cell, rowStyle)
			// Apply table cellpadding when the cell declares none.
			if padding > 0 && cellStyle.Get("padding-top", "") == "" {
				pad := strconv.FormatFloat(padding, 'f', -1, 64) + "px"
				cellStyle["padding-top"] = pad
				cellStyle["padding-right"] = pad
				cellStyle["padding-bottom"] = pad
				cellStyle["padding-left"] = pad
			}
			// Honor explicit width attributes within the row budget.
			if wAttr := cell.AttrOr("width", ""); wAttr != "" {
				if v, ok := css.ParseLength(wAttr, contentW); ok && v > 0 && v <= contentW {
					cw = v
				}
			}
			cb := c.layoutBlock(cell, cellStyle, cx, cur, cw)
			cb.W = cw // cells fill their column regardless of content
			rowBox.Children = append(rowBox.Children, cb)
			if cb.H > maxH {
				maxH = cb.H
			}
			cx += cw + spacing
		}
		// Equalize cell heights across the row.
		for _, cb := range rowBox.Children {
			cb.H = maxH
		}
		rowBox.H = maxH
		cur += maxH + spacing
	}
	return cur - contentY
}

func tableRows(table *dom.Node) []*dom.Node {
	var rows []*dom.Node
	for _, group := range table.ChildNodes() {
		if group.Type != dom.ElementNode {
			continue
		}
		switch group.Tag {
		case "tr":
			rows = append(rows, group)
		case "thead", "tbody", "tfoot":
			for _, r := range group.Children() {
				if r.Tag == "tr" {
					rows = append(rows, r)
				}
			}
		}
	}
	return rows
}

func rowCells(row *dom.Node) []*dom.Node {
	var cells []*dom.Node
	for _, c := range row.Children() {
		if c.Tag == "td" || c.Tag == "th" {
			cells = append(cells, c)
		}
	}
	return cells
}

func cellSpan(cell *dom.Node) int {
	if v, err := strconv.Atoi(cell.AttrOr("colspan", "")); err == nil && v > 1 {
		return v
	}
	return 1
}

// --- inline line building ---

type rect struct{ x0, y0, x1, y1 float64 }

func (r *rect) valid() bool { return r.x1 > r.x0 || r.y1 > r.y0 }

func (r *rect) merge(o rect) {
	if !r.valid() && r.x0 == 0 && r.y0 == 0 {
		*r = o
		return
	}
	if o.x0 < r.x0 {
		r.x0 = o.x0
	}
	if o.y0 < r.y0 {
		r.y0 = o.y0
	}
	if o.x1 > r.x1 {
		r.x1 = o.x1
	}
	if o.y1 > r.y1 {
		r.y1 = o.y1
	}
}

type pendingWord struct {
	text      string
	node      *dom.Node
	x, width  float64
	fontSize  float64
	bold      bool
	italic    bool
	underline bool
	color     color.RGBA
}

// lineCtx accumulates inline content into line boxes within a containing
// block, flushing TextRuns into the block's box.
type lineCtx struct {
	box     *Box
	x0      float64 // line start X
	availW  float64
	x       float64 // next placement X
	y       float64 // current line top
	lineH   float64 // current line height
	pending []pendingWord
	align   string
	started bool // any content placed on current line
}

func newLineCtx(box *Box, style css.Style, x0, y, availW float64) *lineCtx {
	return &lineCtx{
		box:    box,
		x0:     x0,
		availW: availW,
		x:      x0,
		y:      y,
		align:  style.Get("text-align", "left"),
	}
}

// addText splits a text node into words and places them with wrapping.
func (lc *lineCtx) addText(node *dom.Node, style css.Style) {
	fs := fontSizeOf(style)
	bold := strings.HasPrefix(style.Get("font-weight", ""), "bold") || style.Get("font-weight", "") == "700"
	italic := style.Get("font-style", "") == "italic"
	underline := underlineOf(style, node)
	col := colorOf(style)

	words := strings.Fields(node.Data)
	if len(words) == 0 {
		return
	}
	space := CharWidth(fs)
	for _, w := range words {
		ww := TextWidth(w, fs)
		needed := ww
		if lc.started {
			needed += space
		}
		if lc.started && lc.x+needed > lc.x0+lc.availW {
			lc.wrap()
		}
		if lc.started {
			lc.x += space
		}
		lc.pending = append(lc.pending, pendingWord{
			text: w, node: node, x: lc.x, width: ww,
			fontSize: fs, bold: bold, italic: italic, underline: underline,
			color: col,
		})
		lc.x += ww
		lc.started = true
		lh := LineHeight(fs)
		if lh > lc.lineH {
			lc.lineH = lh
		}
	}
}

// placeAtom places a replaced-element box on the line and returns its
// rectangle.
func (lc *lineCtx) placeAtom(w, h float64) rect {
	if w == 0 && h == 0 {
		return rect{}
	}
	if lc.started && lc.x+w > lc.x0+lc.availW {
		lc.wrap()
	}
	r := rect{lc.x, lc.y, lc.x + w, lc.y + h}
	lc.x += w
	lc.started = true
	if h > lc.lineH {
		lc.lineH = h
	}
	return r
}

// breakLine forces a new line (for <br>).
func (lc *lineCtx) breakLine() {
	if lc.lineH == 0 {
		lc.lineH = LineHeight(16)
	}
	lc.wrap()
}

// wrap flushes the pending words as runs on the current line and starts
// a new one.
func (lc *lineCtx) wrap() {
	lc.flushPending()
	lc.y += lc.lineH
	lc.x = lc.x0
	lc.lineH = 0
	lc.started = false
}

// flushPending emits pending words as TextRuns, applying text-align
// offset for the completed line.
func (lc *lineCtx) flushPending() {
	if len(lc.pending) == 0 {
		return
	}
	offset := 0.0
	lineWidth := lc.x - lc.x0
	switch lc.align {
	case "center":
		offset = (lc.availW - lineWidth) / 2
	case "right":
		offset = lc.availW - lineWidth
	}
	if offset < 0 {
		offset = 0
	}
	for _, w := range lc.pending {
		// Baseline-align runs of mixed sizes to the line bottom.
		runY := lc.y + lc.lineH - GlyphHeight(w.fontSize) - (lc.lineH-GlyphHeight(w.fontSize))/2
		if lc.lineH == 0 {
			runY = lc.y
		}
		lc.box.Runs = append(lc.box.Runs, TextRun{
			Text: w.text, Node: w.node,
			X: w.x + offset, Y: runY,
			FontSize: w.fontSize, Bold: w.bold, Italic: w.italic,
			Underline: w.underline,
			Color:     w.color,
		})
	}
	lc.pending = lc.pending[:0]
}

// finish flushes any open line and returns the Y coordinate following the
// inline content.
func (lc *lineCtx) finish() float64 {
	if !lc.started && len(lc.pending) == 0 {
		return lc.y
	}
	lc.flushPending()
	end := lc.y + lc.lineH
	lc.y = end
	lc.x = lc.x0
	lc.lineH = 0
	lc.started = false
	return end
}
