// Package layout implements a block/inline box-model layout engine over
// the dom and css packages. It assigns absolute pixel coordinates to every
// rendered element — the capability m.Site needs to build snapshot image
// maps ("the coordinates and extents of the original document elements
// must be queried from the DOM", §4.3) and to pre-render pages on the
// server, replacing the embedded WebKit of the paper's prototype.
package layout

// The engine uses a synthetic monospaced font: every glyph advances
// GlyphAdvance columns at a given size, and the raster package draws the
// matching 5x7 bitmap glyphs. Keeping metrics and rasterization in
// lock-step means text measured here lands exactly where raster paints it,
// which the searchable-snapshot attribute depends on.
const (
	// GlyphCols and GlyphRows are the bitmap glyph cell (5x7 plus 1
	// column of spacing).
	GlyphCols = 5
	GlyphRows = 7
	// GlyphAdvance is the per-character advance in glyph columns.
	GlyphAdvance = GlyphCols + 1
)

// GlyphScale returns the pixel size of one glyph column/row at the given
// CSS font size.
func GlyphScale(fontSize float64) float64 {
	if fontSize <= 0 {
		fontSize = 16
	}
	return fontSize / 10.0
}

// CharWidth returns the advance width in CSS pixels of one character at
// the given font size.
func CharWidth(fontSize float64) float64 {
	return GlyphAdvance * GlyphScale(fontSize)
}

// TextWidth returns the width in CSS pixels of s at the given font size.
func TextWidth(s string, fontSize float64) float64 {
	n := 0
	for range s {
		n++
	}
	return float64(n) * CharWidth(fontSize)
}

// LineHeight returns the default line height in CSS pixels for a font
// size.
func LineHeight(fontSize float64) float64 {
	if fontSize <= 0 {
		fontSize = 16
	}
	return fontSize * 1.25
}

// GlyphHeight returns the painted glyph height in CSS pixels.
func GlyphHeight(fontSize float64) float64 {
	return GlyphRows * GlyphScale(fontSize)
}
