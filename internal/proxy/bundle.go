package proxy

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"image"
	"image/png"
	"time"

	"msite/internal/attr"
	"msite/internal/cache"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/obs"
	"msite/internal/spec"
)

// bundleWireVersion guards the gob layout; a decoder seeing a newer
// version discards the bundle and rebuilds. Version 1 records (no
// validator) still decode — the validator is simply absent and the
// first revalidation falls back to an unconditional fetch.
const bundleWireVersion = 2

// bundleKey derives the durable cache key of a build product:
// (site, spec hash, device class, fidelity). The spec hash keys bundles
// to the exact adaptation rules — editing the spec rotates the key, so
// stale bundles age out rather than get served.
func bundleKey(s *spec.Spec, width int) (string, error) {
	blob, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("proxy: hashing spec: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write(blob)
	return fmt.Sprintf("bundle:%s:%016x:w%d:%s",
		s.Name, h.Sum64(), width, snapshotFidelity(s)), nil
}

// bundleWire is the serialized form of a builtAdaptation. DOM trees gob
// out as rendered HTML (the node graph is cyclic) and decoded images as
// PNG; both re-materialize on load.
type bundleWire struct {
	Version  int
	Site     string
	Subpages []subpageWire
	Notes    []string
	Files    []fileWire
	Images   []imageWire
	// Validator (version 2+) carries the origin's cache validators from
	// the build's entry fetch; the prefetch refresher revalidates with
	// them instead of re-downloading. gob leaves it zero when decoding a
	// version-1 record.
	Validator BundleValidator
}

// BundleValidator is the origin-freshness evidence stored with a
// bundle: the entry page's ETag and Last-Modified as fetched, plus when
// the fetch happened.
type BundleValidator struct {
	ETag         string
	LastModified string
	FetchedAt    time.Time
}

// Zero reports whether no validator was captured (pre-v2 bundle, or an
// origin that sends none).
func (v BundleValidator) Zero() bool {
	return v.ETag == "" && v.LastModified == "" && v.FetchedAt.IsZero()
}

type fileWire struct {
	Dir, Name, Kind string
	Data            []byte
}

type subpageWire struct {
	Name, Title string
	DocHTML     []byte
	Parent      string
	Region      attr.Region
	PreRender   bool
	AJAX        bool
	Fidelity    int
	ImageData   []byte
	ImageMIME   string
	PartialCSS  bool
	SearchJS    string
	CacheTTL    time.Duration
	Shared      bool
}

type imageWire struct {
	// Keys are every map key sharing this image (an <img> src is stored
	// under both its written and absolute forms).
	Keys []string
	PNG  []byte
}

// encodeBundle serializes a build product for the durable tier.
func encodeBundle(site string, b *builtAdaptation) ([]byte, error) {
	w := bundleWire{Version: bundleWireVersion, Site: site, Notes: b.notes, Validator: b.validator}
	for _, sub := range b.subpages {
		sw := subpageWire{
			Name:       sub.Name,
			Title:      sub.Title,
			Parent:     sub.Parent,
			Region:     sub.Region,
			PreRender:  sub.PreRender,
			AJAX:       sub.AJAX,
			Fidelity:   int(sub.Fidelity),
			ImageData:  sub.ImageData,
			ImageMIME:  sub.ImageMIME,
			PartialCSS: sub.PartialCSS,
			SearchJS:   sub.SearchJS,
			CacheTTL:   sub.CacheTTL,
			Shared:     sub.Shared,
		}
		if sub.Doc != nil {
			sw.DocHTML = []byte(html.Render(sub.Doc))
		}
		w.Subpages = append(w.Subpages, sw)
	}
	for _, bf := range b.files {
		w.Files = append(w.Files, fileWire{Dir: bf.dir, Name: bf.name, Kind: bf.kind, Data: bf.data})
	}
	// Images are stored once per distinct decoded image, carrying every
	// alias key, so the src/absolute-URL double keying doesn't double the
	// bytes.
	index := make(map[image.Image]int, len(b.images))
	for key, img := range b.images {
		if i, ok := index[img]; ok {
			w.Images[i].Keys = append(w.Images[i].Keys, key)
			continue
		}
		var buf bytes.Buffer
		if err := png.Encode(&buf, img); err != nil {
			return nil, fmt.Errorf("proxy: encoding bundle image %q: %w", key, err)
		}
		index[img] = len(w.Images)
		w.Images = append(w.Images, imageWire{Keys: []string{key}, PNG: buf.Bytes()})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("proxy: encoding bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBundle re-materializes a build product: subpage documents are
// re-parsed from their rendered HTML and images decoded from PNG.
func decodeBundle(data []byte) (*builtAdaptation, error) {
	var w bundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("proxy: decoding bundle: %w", err)
	}
	if w.Version < 1 || w.Version > bundleWireVersion {
		return nil, fmt.Errorf("proxy: bundle version %d (want 1..%d)", w.Version, bundleWireVersion)
	}
	b := &builtAdaptation{
		subpages:  make(map[string]*attr.Subpage, len(w.Subpages)),
		notes:     w.Notes,
		validator: w.Validator,
	}
	for _, sw := range w.Subpages {
		sub := &attr.Subpage{
			Name:       sw.Name,
			Title:      sw.Title,
			Parent:     sw.Parent,
			Region:     sw.Region,
			PreRender:  sw.PreRender,
			AJAX:       sw.AJAX,
			Fidelity:   imaging.Fidelity(sw.Fidelity),
			ImageData:  sw.ImageData,
			ImageMIME:  sw.ImageMIME,
			PartialCSS: sw.PartialCSS,
			SearchJS:   sw.SearchJS,
			CacheTTL:   sw.CacheTTL,
			Shared:     sw.Shared,
		}
		if len(sw.DocHTML) > 0 {
			sub.Doc = tidyDoc(string(sw.DocHTML))
		}
		b.subpages[sub.Name] = sub
	}
	for _, fw := range w.Files {
		b.files = append(b.files, buildFile{dir: fw.Dir, name: fw.Name, data: fw.Data, kind: fw.Kind})
	}
	if len(w.Images) > 0 {
		b.images = make(map[string]image.Image, len(w.Images))
		for _, iw := range w.Images {
			img, err := png.Decode(bytes.NewReader(iw.PNG))
			if err != nil {
				return nil, fmt.Errorf("proxy: decoding bundle image: %w", err)
			}
			for _, key := range iw.Keys {
				b.images[key] = img
			}
		}
	}
	return b, nil
}

// loadBundle tries to satisfy a build from the persisted bundle. With a
// tiered cache this is where a restarted proxy skips the whole pipeline:
// the durable record decodes into the same build product the pipeline
// would produce. A bundle that fails to decode (version drift, torn
// record) is deleted and rebuilt.
func (p *Proxy) loadBundle(ctx context.Context) (*builtAdaptation, bool) {
	e, ok := p.cfg.Cache.Get(p.bundleKey)
	if !ok {
		return nil, false
	}
	b, err := decodeBundle(e.Data)
	if err != nil {
		p.cfg.Cache.Delete(p.bundleKey)
		obs.TraceFrom(ctx).Annotate("bundle", "discarded")
		return nil, false
	}
	p.obs.Counter("msite_proxy_bundle_reuses_total", "site", p.cfg.Spec.Name).Inc()
	obs.TraceFrom(ctx).Annotate("bundle", "reuse")
	p.setBundleValidator(b.validator)
	return b, true
}

// saveBundle persists a fresh build product. The Put is L1-synchronous
// and store-asynchronous (via the tiered write-through), so the build
// path never waits on disk; encode failures only cost the persistence.
func (p *Proxy) saveBundle(b *builtAdaptation) {
	data, err := encodeBundle(p.cfg.Spec.Name, b)
	if err != nil {
		p.obs.Counter("msite_proxy_bundle_encode_errors_total", "site", p.cfg.Spec.Name).Inc()
		return
	}
	p.cfg.Cache.Put(p.bundleKey, cache.Entry{Data: data, MIME: "application/x-msite-bundle"}, p.bundleTTL)
	p.setBundleValidator(b.validator)
}
