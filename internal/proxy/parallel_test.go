package proxy

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"msite/internal/cache"
	"msite/internal/origin"
	"msite/internal/session"
)

// adaptedLen reports how many sessions hold adaptation state.
func (p *Proxy) adaptedLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.adapted)
}

// TestAdaptedEvictedOnSessionExpiry is the regression test for the
// unbounded Proxy.adapted map: when the session manager expires (or
// GCs, or deletes) a session, the proxy must release that session's
// adaptation state.
func TestAdaptedEvictedOnSessionExpiry(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1_000_000, 0)}
	now := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.now
	}
	advance := func(d time.Duration) {
		clk.mu.Lock()
		clk.now = clk.now.Add(d)
		clk.mu.Unlock()
	}

	sessions, err := session.NewManagerWithClock(t.TempDir(), time.Hour, now)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: forumSpec(originSrv.URL), Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := p.adaptedLen(); got != 1 {
		t.Fatalf("adapted sessions = %d after entry, want 1", got)
	}

	// Idle past the TTL; GC must cascade into the proxy's state.
	advance(2 * time.Hour)
	if n := sessions.GC(); n != 1 {
		t.Fatalf("GC collected %d sessions, want 1", n)
	}
	if got := p.adaptedLen(); got != 0 {
		t.Fatalf("adapted sessions = %d after GC, want 0 (session state leaked)", got)
	}
}

// TestAdaptedEvictedOnDelete covers the explicit-delete path.
func TestAdaptedEvictedOnDelete(t *testing.T) {
	rig := newRig(t, nil)
	if _, resp := rig.get(t, "/"); resp.StatusCode != http.StatusOK {
		t.Fatalf("entry status = %d", resp.StatusCode)
	}
	if got := rig.p.adaptedLen(); got != 1 {
		t.Fatalf("adapted sessions = %d, want 1", got)
	}
	var id string
	rig.p.mu.Lock()
	for sid := range rig.p.adapted {
		id = sid
	}
	rig.p.mu.Unlock()
	if err := rig.p.cfg.Sessions.Delete(id); err != nil {
		t.Fatal(err)
	}
	if got := rig.p.adaptedLen(); got != 0 {
		t.Fatalf("adapted sessions = %d after Delete, want 0", got)
	}
}

// TestConcurrentFirstRequests drives many cold sessions in parallel
// through the full (now concurrent) adaptation pipeline — the -race
// guard for FetchAll, the band-parallel rasterizer, and the concurrent
// file writes behind one proxy.
func TestConcurrentFirstRequests(t *testing.T) {
	rig := newRig(t, nil)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jar, _ := cookiejar.New(nil)
			client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
			resp, err := client.Get(rig.proxy.URL + "/")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("entry status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWriteFilesErrorPropagates checks the bounded write pool surfaces
// the first failure.
func TestWriteFilesErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	jobs := []writeJob{
		{path: filepath.Join(dir, "ok.html"), data: []byte("x"), kind: "subpage"},
		{path: filepath.Join(dir, "missing-dir", "bad.html"), data: []byte("x"), kind: "subpage"},
		{path: filepath.Join(dir, "ok2.html"), data: []byte("x"), kind: "subpage"},
	}
	if err := writeFiles(jobs, 2); err == nil {
		t.Fatal("expected write error")
	}
	if err := writeFiles(jobs[:1], 4); err != nil {
		t.Fatalf("single good job: %v", err)
	}
	if _, err := os.Stat(jobs[0].path); err != nil {
		t.Fatalf("good file missing: %v", err)
	}
}
