package proxy

import (
	"context"
	"errors"
	"fmt"
	"image"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/attr"
	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/imaging"
	"msite/internal/obs"
	"msite/internal/progressive"
	"msite/internal/raster"
	"msite/internal/session"
)

// coarseSnapshotName is the session-directory file (and asset name) of
// the coarse first rung of a progressive snapshot.
const coarseSnapshotName = "snapshot-coarse.jpg"

// snapState tracks one session's background snapshot render. The asset
// handler waits on the rungs instead of 404ing a file the renderer has
// not written yet.
type snapState struct {
	coarseOnce sync.Once
	// coarse closes when the coarse rung is on disk (or the render
	// finished without one).
	coarse chan struct{}
	// full closes when the render completed; err is set first.
	full chan struct{}
	err  error
}

func newSnapState() *snapState {
	return &snapState{coarse: make(chan struct{}), full: make(chan struct{})}
}

func (st *snapState) closeCoarse() { st.coarseOnce.Do(func() { close(st.coarse) }) }

func flushNow(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamEntry serves the entry page flush-early: the overlay head (all
// statically-known markup, including the snapshot img reference) is on
// the wire before the origin fetch begins, above-the-fold image-map
// areas follow the attribute phase, and the snapshot renders on a
// background goroutine the asset handler waits on. Perceived latency
// (DRIVESHAFT's argument) tracks the first flush, not the pipeline.
func (p *Proxy) streamEntry(w http.ResponseWriter, r *http.Request, sess *session.Session, start time.Time) {
	site := p.cfg.Spec.Name
	fid := snapshotFidelity(p.cfg.Spec)
	scale := p.cfg.Spec.Snapshot.Scale
	if scale <= 0 {
		scale = 1
	}
	ov := attr.Overlay{
		SnapshotURL: p.prefix + "/asset/snapshot" + fid.Ext(),
		Scale:       scale,
		Title:       site,
	}
	if p.cfg.SnapshotProgressive {
		// The overlay paints the coarse rung first and trades up to the
		// versioned full-fidelity URL once its encode completes.
		gen := p.snapGen.Add(1)
		ov.UpgradeURL = fmt.Sprintf("%s?v=%d", ov.SnapshotURL, gen)
		ov.SnapshotURL = p.prefix + "/asset/" + coarseSnapshotName
	}
	atfHeight := p.cfg.ATFHeight
	if atfHeight == 0 {
		atfHeight = DefaultATFHeight
	}

	// Commit the response and flush the head before any origin work:
	// TTFB decouples from the adaptation pipeline entirely.
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	frags := p.applier.BuildOverlayStream(ov, nil, atfHeight)
	_, _ = w.Write(frags.Head)
	flushNow(w)
	obs.TraceFrom(r.Context()).Annotate("stream", "head_flushed")

	ad, err := p.ensureAdaptation(r.Context(), sess, r.URL.Query().Get("refresh") == "1")
	if err != nil {
		p.streamAbort(w, r, err)
		return
	}

	// Kick the snapshot render off now: it overlaps with the client
	// receiving and parsing the map fragments below.
	p.ensureSnapshotAsync(sess)

	var subs []*attr.Subpage
	for _, sub := range ad.subpages {
		subs = append(subs, sub)
	}
	frags = p.applier.BuildOverlayStream(ov, subs, atfHeight)
	_, _ = w.Write(frags.ATF)
	_, _ = io.WriteString(w, attr.ATFMarker)
	flushNow(w)
	p.obs.Histogram("msite_proxy_atf_seconds", "site", site, "mode", "streaming").
		ObserveDuration(time.Since(start))
	_, _ = w.Write(frags.BTF)
	_, _ = w.Write(frags.Tail)
}

// streamAbort degrades a streamed entry whose adaptation failed after
// the 200 and head were already on the wire: the document is closed
// in-band with a human-usable message (and an auth link for origin
// challenges) instead of a broken status.
func (p *Proxy) streamAbort(w http.ResponseWriter, r *http.Request, err error) {
	obs.TraceFrom(r.Context()).Annotate("error", err.Error())
	_ = p.degrade(r.Context(), "stream_entry", err)
	msg := "origin unavailable; retry shortly"
	var authErr *fetch.AuthRequiredError
	if errors.As(err, &authErr) {
		back := url.QueryEscape(r.URL.RequestURI())
		msg = fmt.Sprintf(`<a href="%s/auth?back=%s">authentication required</a>`, p.prefix, back)
	}
	fmt.Fprintf(w, "</map><p>%s</p></body></html>", msg)
}

// ensureSnapshotAsync starts (or joins) this session's background
// snapshot render. A completed successful render is reused; a failed
// one is retried.
func (p *Proxy) ensureSnapshotAsync(sess *session.Session) *snapState {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	if st, ok := p.snaps[sess.ID]; ok {
		select {
		case <-st.full:
			if st.err == nil {
				return st
			}
			// A failed render is retried below.
		default:
			return st // in flight
		}
	}
	st := newSnapState()
	p.snaps[sess.ID] = st
	go p.runSnapshotAsync(sess, st)
	return st
}

// runSnapshotAsync executes one background snapshot render. The context
// is detached deliberately: the render is shared, cached work, and a
// client disconnecting mid-stream must not abort it for the session's
// (or, through the shared cache, every session's) next request.
func (p *Proxy) runSnapshotAsync(sess *session.Session, st *snapState) {
	ctx := context.Background()
	var err error
	if p.cfg.SnapshotProgressive {
		err = p.snapshotProgressive(ctx, sess, st)
	} else {
		_, _, _, _, err = p.snapshot(ctx, sess)
	}
	st.err = err
	st.closeCoarse()
	close(st.full)
}

// snapshotProgressive renders the session's snapshot as a temporal
// fidelity ladder: the coarse rung is published (written to the session
// directory and the shared cache) the moment rasterization finishes,
// while the full-fidelity encode — byte-identical to the buffered
// path's — is still running. The full artifact lands in the shared
// cache under the same key the buffered path uses, so streaming and
// buffered proxies interoperate across restarts.
func (p *Proxy) snapshotProgressive(ctx context.Context, sess *session.Session, st *snapState) error {
	fid := snapshotFidelity(p.cfg.Spec)
	scale := p.cfg.Spec.Snapshot.Scale
	if scale <= 0 {
		scale = 1
	}
	ttl := time.Duration(p.cfg.Spec.Snapshot.CacheTTLSeconds) * time.Second
	site := p.cfg.Spec.Name

	p.mu.Lock()
	var snapImages map[string]image.Image
	if ad, ok := p.adapted[sess.ID]; ok {
		snapImages = ad.images
	}
	p.mu.Unlock()

	var filled atomic.Bool
	fill := func() (cache.Entry, error) {
		filled.Store(true)
		p.nSnapshotRenders.Add(1)
		p.obs.Counter("msite_proxy_snapshot_renders_total", "site", site).Inc()
		src, err := os.ReadFile(p.sessionFile(sess, "pages", "main.html"))
		if err != nil {
			return cache.Entry{}, fmt.Errorf("proxy: reading adapted main: %w", err)
		}
		sp := obs.StartSpan(ctx, "layout")
		doc := tidyDoc(string(src))
		res := layoutForDoc(doc, p.width)
		sp.End()
		// Raster and coarse encode interleave inside progressive.Render;
		// one span covers the ladder.
		sp = obs.StartSpan(ctx, "raster_encode")
		out, err := progressive.Render(res, progressive.Config{
			Raster:   raster.Options{Images: snapImages, Workers: p.rasterWork},
			Fidelity: fid,
			Scale:    scale,
			OnCoarse: func(a progressive.Artifact) {
				if p.cfg.Spec.Snapshot.Shared && ttl > 0 {
					p.cfg.Cache.Put("snapshot-coarse:"+site,
						cache.Entry{Data: a.Data, MIME: a.MIME}, ttl)
				}
				p.writeCoarse(sess, st, a.Data)
			},
		})
		sp.End()
		if err != nil {
			return cache.Entry{}, err
		}
		meta := fmt.Sprintf("%d,%d", out.Full.Width, out.Full.Height)
		return cache.Entry{Data: out.Full.Data, MIME: fid.MIME() + ";" + meta}, nil
	}

	var entry cache.Entry
	var err error
	if p.cfg.Spec.Snapshot.Shared && ttl > 0 {
		entry, err = p.cfg.Cache.GetOrFill("snapshot:"+site, ttl, fill)
		if err == nil && !filled.Load() {
			p.nSnapshotHits.Add(1)
			p.obs.Counter("msite_proxy_snapshot_hits_total", "site", site).Inc()
		}
	} else {
		entry, err = fill()
	}
	if err != nil {
		return err
	}
	if !filled.Load() {
		// The full artifact came out of the shared cache, so this
		// session has no coarse rung yet. Reuse a cached one, or derive
		// it from the full bytes (cheap relative to a render).
		if e, ok := p.cfg.Cache.Get("snapshot-coarse:" + site); ok {
			p.writeCoarse(sess, st, e.Data)
		} else if data, derr := coarseFromFull(entry.Data); derr == nil {
			if p.cfg.Spec.Snapshot.Shared && ttl > 0 {
				p.cfg.Cache.Put("snapshot-coarse:"+site,
					cache.Entry{Data: data, MIME: "image/jpeg"}, ttl)
			}
			p.writeCoarse(sess, st, data)
		}
	}
	imagesDir, derr := sess.ImageDir()
	if derr != nil {
		return derr
	}
	name := "snapshot" + fid.Ext()
	if werr := os.WriteFile(filepath.Join(imagesDir, name), entry.Data, 0o600); werr != nil {
		return fmt.Errorf("proxy: writing snapshot: %w", werr)
	}
	return nil
}

// writeCoarse lands the coarse rung in the session's image directory
// and unblocks asset requests waiting on it.
func (p *Proxy) writeCoarse(sess *session.Session, st *snapState, data []byte) {
	imagesDir, err := sess.ImageDir()
	if err != nil {
		return
	}
	if err := os.WriteFile(filepath.Join(imagesDir, coarseSnapshotName), data, 0o600); err != nil {
		return
	}
	st.closeCoarse()
}

// coarseFromFull derives the coarse rung from an already-encoded full
// snapshot — the shared-cache-hit path, where no paint ran to feed the
// incremental accumulator.
func coarseFromFull(full []byte) ([]byte, error) {
	img, err := imaging.Decode(full)
	if err != nil {
		return nil, err
	}
	coarse := imaging.ScaleFactor(img, progressive.DefaultCoarseScale)
	data, err := imaging.EncodeJPEG(coarse, progressive.DefaultCoarseQuality)
	imaging.PutRGBA(coarse)
	return data, err
}

// awaitSnapshotAsset blocks an asset request for a snapshot file the
// background renderer has not written yet, bounded by the request
// context. Non-snapshot assets never wait.
func (p *Proxy) awaitSnapshotAsset(r *http.Request, sess *session.Session, name string) ([]byte, error) {
	if !strings.HasPrefix(name, "snapshot") {
		return nil, os.ErrNotExist
	}
	p.snapMu.Lock()
	st := p.snaps[sess.ID]
	p.snapMu.Unlock()
	if st == nil {
		return nil, os.ErrNotExist
	}
	ch := st.full
	if name == coarseSnapshotName {
		ch = st.coarse
	}
	select {
	case <-ch:
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
	return os.ReadFile(p.sessionFile(sess, "images", name))
}
