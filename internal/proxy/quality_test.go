package proxy

import (
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/cache"
	"msite/internal/origin"
	"msite/internal/session"
	"msite/internal/spec"
)

// newQualityRig is newRig with control over the quality knobs.
func newQualityRig(t *testing.T, mutateSpec func(*spec.Spec), mutateCfg func(*Config)) *testRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	sp := forumSpec(originSrv.URL)
	if mutateSpec != nil {
		mutateSpec(sp)
	}
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: sp, Sessions: sessions, Cache: cache.New()}
	if mutateCfg != nil {
		mutateCfg(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)

	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{
		origin: originSrv,
		proxy:  proxySrv,
		p:      p,
		client: &http.Client{Jar: jar, Timeout: 30 * time.Second},
	}
}

// TestQualityCleanForumPassesStrictParity: with repair rules and the
// strict parity gate on, the real forum spec builds cleanly — the spec's
// deliberate drops (banner replace, pre-rendered forums subpage) are
// sanctioned, everything else survives in the entry+subpage closure.
func TestQualityCleanForumPassesStrictParity(t *testing.T) {
	rig := newQualityRig(t, nil, func(cfg *Config) {
		cfg.RepairRules = "all"
		cfg.ParityCheck = true
		cfg.ParityMinScore = 1
	})
	_, resp := rig.get(t, "/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("entry status %d with strict parity on a clean spec", resp.StatusCode)
	}
	par := rig.p.ParityReport()
	if par == nil {
		t.Fatal("no parity report after a build")
	}
	if par.Score != 1 || par.MissingItems != 0 {
		t.Fatalf("clean forum spec scored %.4f, missing %d: %+v", par.Score, par.MissingItems, par)
	}
	if par.TotalItems < 20 {
		t.Fatalf("suspiciously small inventory: %+v", par)
	}
	// The forum page ships without a viewport meta, so the repair pass
	// must have fired at least that rule.
	if got := rig.p.obs.Counter("msite_quality_repairs_total", "rule", "viewport", "site", "sawdust").Value(); got == 0 {
		t.Fatal("viewport repair did not fire on the forum page")
	}
	if got := rig.p.obs.Gauge("msite_quality_parity_score", "site", "sawdust").Value(); got != 1 {
		t.Fatalf("parity gauge = %v", got)
	}
}

// TestQualityParityFailsBuildOnContentDrop: an overzealous filter that
// eats the announcement div must fail the build loudly when the strict
// gate is on.
func TestQualityParityFailsBuildOnContentDrop(t *testing.T) {
	drop := func(sp *spec.Spec) {
		sp.Filters = append(sp.Filters, spec.Filter{
			Type:   "replace",
			Params: map[string]string{"pattern": `(?is)<div id="announce".*?</div>`},
		})
	}
	rig := newQualityRig(t, drop, func(cfg *Config) {
		cfg.ParityCheck = true
		cfg.ParityMinScore = 1
	})
	_, resp := rig.get(t, "/")
	if resp.StatusCode == http.StatusOK {
		t.Fatal("build served OK despite dropped content under the strict parity gate")
	}
	if got := rig.p.obs.Counter("msite_quality_parity_failures_total", "site", "sawdust").Value(); got == 0 {
		t.Fatal("parity failure counter not incremented")
	}
	par := rig.p.ParityReport()
	if par == nil || par.TextMissing == 0 {
		t.Fatalf("parity report does not show the dropped text: %+v", par)
	}
}

// TestQualityParityReportOnlyMode: without a minimum score the same
// drop is reported (metrics, notes, report) but still serves.
func TestQualityParityReportOnlyMode(t *testing.T) {
	drop := func(sp *spec.Spec) {
		sp.Filters = append(sp.Filters, spec.Filter{
			Type:   "replace",
			Params: map[string]string{"pattern": `(?is)<div id="announce".*?</div>`},
		})
	}
	rig := newQualityRig(t, drop, func(cfg *Config) {
		cfg.ParityCheck = true
	})
	_, resp := rig.get(t, "/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report-only parity failed the build: %d", resp.StatusCode)
	}
	par := rig.p.ParityReport()
	if par == nil || par.Score >= 1 || par.TextMissing == 0 {
		t.Fatalf("drop not reported: %+v", par)
	}
	noted := false
	for _, n := range par.Notes() {
		if strings.Contains(n, "missing text") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("notes missing the diff: %v", par.Notes())
	}
}

// TestQualityUnknownRuleRejectedAtConstruction: bad -repair-rules
// values surface at startup, not mid-build.
func TestQualityUnknownRuleRejectedAtConstruction(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Spec: forumSpec(originSrv.URL), Sessions: sessions, Cache: cache.New(),
		RepairRules: "viewport,bogus",
	})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown rule accepted: %v", err)
	}
}
