package proxy

import (
	"bytes"
	"encoding/gob"
	"image"
	"image/color"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/attr"
	"msite/internal/cache"
	"msite/internal/imaging"
	"msite/internal/origin"
	"msite/internal/session"
	"msite/internal/store"
)

// persistRig is a proxy over a tiered cache backed by a real durable
// store, restartable against the same store directory.
type persistRig struct {
	t        *testing.T
	origin   *httptest.Server
	storeDir string

	st    *store.Store
	tc    *cache.Tiered
	p     *Proxy
	proxy *httptest.Server
}

func newPersistRig(t *testing.T) *persistRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)
	rig := &persistRig{t: t, origin: originSrv, storeDir: t.TempDir()}
	rig.start()
	return rig
}

// start boots a fresh proxy generation over the persistent store dir.
func (rig *persistRig) start() {
	t := rig.t
	t.Helper()
	st, err := store.Open(store.Options{Dir: rig.storeDir, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tc := cache.NewTiered(cache.New(), st, cache.TieredOptions{})
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Spec:           forumSpec(rig.origin.URL),
		Sessions:       sessions,
		Cache:          tc,
		PersistBundles: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.st, rig.tc, rig.p = st, tc, p
	rig.proxy = httptest.NewServer(p)
	t.Cleanup(func() {
		rig.proxy.Close()
		tc.Close()
		_ = st.Close()
	})
}

// restart closes this generation (draining async writes) and boots a new
// one from the same store directory — the crash/deploy cycle.
func (rig *persistRig) restart() {
	rig.t.Helper()
	rig.proxy.Close()
	rig.tc.Close() // drains the write-through queue
	if err := rig.st.Close(); err != nil {
		rig.t.Fatal(err)
	}
	rig.start()
}

// get fetches a path with a fresh cookie-jar client.
func (rig *persistRig) get(path string) (string, *http.Response) {
	rig.t.Helper()
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(rig.proxy.URL + path)
	if err != nil {
		rig.t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return b.String(), resp
}

// TestWarmRestartServesWithoutRenders is the proxy-level warm-restart
// proof: after a restart against the same store directory, the entry
// page (snapshot overlay included) is served entirely from durable
// artifacts — zero adaptations, zero snapshot renders.
func TestWarmRestartServesWithoutRenders(t *testing.T) {
	rig := newPersistRig(t)

	body, resp := rig.get("/")
	if resp.StatusCode != 200 {
		t.Fatalf("cold entry: %d: %s", resp.StatusCode, body)
	}
	cold := rig.p.Stats()
	if cold.Adaptations != 1 || cold.SnapshotRenders != 1 {
		t.Fatalf("cold stats = %+v; want 1 adaptation, 1 render", cold)
	}

	rig.restart()

	warmBody, resp := rig.get("/")
	if resp.StatusCode != 200 {
		t.Fatalf("warm entry: %d: %s", resp.StatusCode, warmBody)
	}
	if !strings.Contains(warmBody, "/asset/snapshot") {
		t.Fatalf("warm entry lost the snapshot overlay: %s", warmBody)
	}
	warm := rig.p.Stats()
	if warm.SnapshotRenders != 0 {
		t.Fatalf("warm restart re-rendered the snapshot %d times", warm.SnapshotRenders)
	}
	if warm.Adaptations != 0 {
		t.Fatalf("warm restart re-ran the pipeline %d times", warm.Adaptations)
	}
	if hits := rig.st.Stats().Hits; hits == 0 {
		t.Fatal("warm restart served without touching the durable store")
	}

	// The rehydrated bundle serves subpages and assets too.
	subBody, resp := rig.get("/subpage/login")
	if resp.StatusCode != 200 || !strings.Contains(subBody, "<html") {
		t.Fatalf("warm subpage: %d: %s", resp.StatusCode, subBody)
	}
}

// TestRefreshBypassesBundle proves ?refresh=1 still forces a real
// pipeline run (and overwrites the stored bundle) on a warm proxy.
func TestRefreshBypassesBundle(t *testing.T) {
	rig := newPersistRig(t)
	if _, resp := rig.get("/"); resp.StatusCode != 200 {
		t.Fatal("cold entry failed")
	}
	rig.restart()

	if _, resp := rig.get("/?refresh=1"); resp.StatusCode != 200 {
		t.Fatal("refresh entry failed")
	}
	if got := rig.p.Stats().Adaptations; got != 1 {
		t.Fatalf("refresh ran %d adaptations; want 1 (bundle bypassed)", got)
	}
}

// TestPersonalizedSessionsBypassBundle: logged-in (personalized)
// sessions must never be served another user's persisted bundle.
func TestPersonalizedSessionsBypassBundle(t *testing.T) {
	rig := newPersistRig(t)
	if _, resp := rig.get("/"); resp.StatusCode != 200 {
		t.Fatal("cold entry failed")
	}
	rig.restart()

	// A personalized session: mark via the session manager directly.
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(rig.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	// First anonymous visit on the warm proxy reused the bundle.
	if got := rig.p.Stats().Adaptations; got != 0 {
		t.Fatalf("anonymous warm visit ran %d adaptations", got)
	}
}

// TestBundleRoundTrip pins the wire format: a build product survives
// encode/decode with subpages, files, notes, and images intact.
func TestBundleRoundTrip(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 3, 2))
	img.Set(1, 1, color.RGBA{R: 200, G: 10, B: 30, A: 255})
	src := &builtAdaptation{
		subpages: map[string]*attr.Subpage{
			"nav": {
				Name:   "nav",
				Title:  "Navigation",
				Doc:    tidyDoc("<html><head><title>Navigation</title></head><body><ul><li>a</li></ul></body></html>"),
				Parent: "",
				Region: attr.Region{X: 1, Y: 2, W: 30, H: 40},
				AJAX:   true,
				Shared: true,
			},
			"pics": {
				Name:      "pics",
				PreRender: true,
				Fidelity:  imaging.FidelityLow,
				ImageData: []byte{1, 2, 3},
				ImageMIME: "image/png",
				CacheTTL:  time.Minute,
			},
		},
		notes: []string{"degraded filter: x"},
		files: []buildFile{
			{dir: "pages", name: "main.html", data: []byte("<html></html>"), kind: "main"},
			{dir: "images", name: "t.png", data: []byte{9}, kind: "asset"},
		},
		images: map[string]image.Image{
			"/logo.gif":               img,
			"http://origin/logo.gif":  img, // alias of the same decoded image
			"http://origin/other.gif": image.NewRGBA(image.Rect(0, 0, 1, 1)),
		},
	}
	blob, err := encodeBundle("sawdust", src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeBundle(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.subpages) != 2 {
		t.Fatalf("subpages = %d", len(got.subpages))
	}
	nav := got.subpages["nav"]
	if nav == nil || nav.Title != "Navigation" || !nav.AJAX || !nav.Shared ||
		nav.Region != (attr.Region{X: 1, Y: 2, W: 30, H: 40}) || nav.Doc == nil {
		t.Fatalf("nav subpage mangled: %+v", nav)
	}
	pics := got.subpages["pics"]
	if pics == nil || !pics.PreRender || pics.Fidelity != imaging.FidelityLow ||
		string(pics.ImageData) != "\x01\x02\x03" || pics.CacheTTL != time.Minute {
		t.Fatalf("pics subpage mangled: %+v", pics)
	}
	if len(got.files) != 2 || got.files[0].name != "main.html" || string(got.files[0].data) != "<html></html>" {
		t.Fatalf("files mangled: %+v", got.files)
	}
	if len(got.notes) != 1 || got.notes[0] != "degraded filter: x" {
		t.Fatalf("notes mangled: %v", got.notes)
	}
	if len(got.images) != 3 {
		t.Fatalf("images = %d; want 3 keys", len(got.images))
	}
	if got.images["/logo.gif"] != got.images["http://origin/logo.gif"] {
		t.Fatal("aliased image keys decoded to distinct images")
	}
	r, g, bb, a := got.images["/logo.gif"].At(1, 1).RGBA()
	if r>>8 != 200 || g>>8 != 10 || bb>>8 != 30 || a>>8 != 255 {
		t.Fatalf("image pixel mangled: %d %d %d %d", r>>8, g>>8, bb>>8, a>>8)
	}
	// A corrupt blob is rejected, not served.
	if _, err := decodeBundle(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated bundle decoded")
	}
}

// bundleWireV1 is the exact wire shape of version-1 records (pre
// validator capture), kept here so the regression test below encodes a
// genuinely old record rather than a new struct with the field zeroed.
type bundleWireV1 struct {
	Version  int
	Site     string
	Subpages []subpageWire
	Notes    []string
	Files    []fileWire
	Images   []imageWire
}

func TestDecodeV1BundleBackwardCompatible(t *testing.T) {
	old := bundleWireV1{
		Version: 1,
		Site:    "sawdust",
		Subpages: []subpageWire{{
			Name:    "nav",
			Title:   "Navigation",
			DocHTML: []byte("<html><body><p>hi</p></body></html>"),
		}},
		Notes: []string{"from v1"},
		Files: []fileWire{{Dir: "pages", Name: "main.html", Data: []byte("<html></html>"), Kind: "main"}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatalf("encoding v1 record: %v", err)
	}
	got, err := decodeBundle(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding v1 record: %v", err)
	}
	if len(got.subpages) != 1 || got.subpages["nav"] == nil || got.subpages["nav"].Title != "Navigation" {
		t.Fatalf("v1 subpages mangled: %+v", got.subpages)
	}
	if len(got.notes) != 1 || got.notes[0] != "from v1" {
		t.Fatalf("v1 notes mangled: %v", got.notes)
	}
	if !got.validator.Zero() {
		t.Fatalf("v1 record decoded with a non-zero validator: %+v", got.validator)
	}
	// A v2 record round-trips its validator.
	v2src := &builtAdaptation{
		subpages: map[string]*attr.Subpage{"nav": {Name: "nav"}},
		validator: BundleValidator{
			ETag:         `"abc"`,
			LastModified: "Mon, 02 Jan 2006 15:04:05 GMT",
			FetchedAt:    time.Unix(1700000000, 0).UTC(),
		},
	}
	blob, err := encodeBundle("sawdust", v2src)
	if err != nil {
		t.Fatalf("encoding v2 record: %v", err)
	}
	v2got, err := decodeBundle(blob)
	if err != nil {
		t.Fatalf("decoding v2 record: %v", err)
	}
	if v2got.validator != v2src.validator {
		t.Fatalf("v2 validator mangled: got %+v want %+v", v2got.validator, v2src.validator)
	}
	// A future version is rejected so the loader rebuilds.
	future := bundleWireV1{Version: bundleWireVersion + 1}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&future); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBundle(buf.Bytes()); err == nil {
		t.Fatal("future-version bundle decoded")
	}
}
