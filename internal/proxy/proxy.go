// Package proxy implements m.Site's multi-session content adaptation
// proxy (§3.2): the generated shell code's runtime. It manages session
// cookies and per-user protected directories, downloads origin pages on
// demand with per-user cookie jars and HTTP auth interposition, runs the
// source-level filter phase and the DOM-level attribute phase, writes
// generated subpages and images into the user's session directory,
// serves the cached snapshot entry page, and satisfies rewritten AJAX
// calls — all without a heavyweight browser instance per client.
package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"image"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/admission"
	"msite/internal/ajax"
	"msite/internal/attr"
	"msite/internal/cache"
	"msite/internal/dom"
	"msite/internal/fetch"
	"msite/internal/filter"
	"msite/internal/imaging"
	"msite/internal/layout"
	"msite/internal/obs"
	"msite/internal/quality"
	"msite/internal/raster"
	"msite/internal/render"
	"msite/internal/session"
	"msite/internal/spec"
)

// Config wires a Proxy.
type Config struct {
	// Spec is the adaptation specification (required, validated).
	Spec *spec.Spec
	// Sessions manages per-client state (required).
	Sessions *session.Manager
	// Cache is the public cross-session render cache (required). With a
	// *cache.Tiered it is also the durable tier adapted artifacts
	// persist through.
	Cache cache.Layer
	// ViewportWidth overrides the spec's server-side render width.
	ViewportWidth int
	// FetchOptions are applied to every origin fetcher.
	FetchOptions []fetch.Option
	// PathPrefix mounts the proxy under a URL prefix (e.g. "/p/forum"),
	// letting one server host the adaptation proxies for several pages
	// of a site (see MultiProxy). Empty mounts at the root.
	PathPrefix string
	// Obs receives the proxy's metrics and request traces. Nil creates a
	// private registry (core wires one shared registry across the stack).
	Obs *obs.Registry
	// Logger, when non-nil, emits one structured line per request with
	// session id, handler kind, cache outcome, status, and duration.
	// Nil disables request logging (the default, and what tests use).
	Logger *slog.Logger
	// FetchWorkers bounds the parallelism of subresource downloads
	// (stylesheets, render images) during adaptation. 0 uses the
	// fetcher's default; 1 forces serial fetching.
	FetchWorkers int
	// RasterWorkers is the band parallelism of snapshot rasterization.
	// 0 uses GOMAXPROCS; 1 forces the serial painter.
	RasterWorkers int
	// WriteWorkers bounds the concurrent subpage/asset file writes per
	// adaptation. 0 defaults to 4; 1 forces serial writes.
	WriteWorkers int
	// ServeStale keeps serving a session's previous adaptation (and the
	// shared snapshot past its TTL) when re-adaptation fails because the
	// origin is unreachable, instead of returning 502.
	ServeStale bool
	// StaleFor bounds how long past expiry a shared snapshot remains
	// servable while a background refresh runs (stale-while-revalidate).
	// Zero with ServeStale set uses DefaultStaleFor.
	StaleFor time.Duration
	// Admission is the overload-protection tier: the adaptation
	// concurrency limiter and per-client rate limiter. Nil admits
	// everything (the default, and what most tests use). One controller
	// is shared across every site of a MultiProxy.
	Admission *admission.Controller
	// PersistBundles stores each non-personalized build product (subpage
	// set, generated files, decoded images) in the cache keyed by
	// (site, spec hash, device class, fidelity), so a restarted proxy —
	// whose Cache is backed by a durable tier — reuses the build instead
	// of re-running the pipeline. Off by default; core enables it when a
	// store is configured.
	PersistBundles bool
	// BundleTTL bounds a persisted bundle's lifetime (zero uses
	// DefaultBundleTTL). A spec change rotates the key, so the TTL only
	// has to cover origin-content drift.
	BundleTTL time.Duration
	// Stream enables flush-early entry serving: the overlay head is
	// written and flushed before the origin fetch begins, above-the-fold
	// image-map areas follow as soon as the attribute phase has regions,
	// and the snapshot renders on a background goroutine the asset
	// handler waits on. Off, the entry buffers as before.
	Stream bool
	// ATFHeight is the above-the-fold boundary in scaled snapshot
	// pixels for the streaming entry's fragment split. 0 uses
	// DefaultATFHeight; negative treats everything as above the fold.
	ATFHeight int
	// SnapshotProgressive serves the snapshot as a temporal fidelity
	// ladder on the streaming path: a coarse quarter-scale JPEG the
	// moment rasterization finishes, upgraded in-place to the
	// full-fidelity artifact (byte-identical to the buffered encode)
	// once it completes. Requires Stream.
	SnapshotProgressive bool
	// MinimalMarkup forces the MAML-style minimal-markup entry mode for
	// every request, regardless of the spec's minimal_markup attribute.
	MinimalMarkup bool
	// Demand, when non-nil, is called with the site name on every entry
	// and subpage request — the live-traffic signal the prefetch
	// crawler's demand ranking decays over. Must be cheap and
	// non-blocking; it runs on the serve path.
	Demand func(site string)
	// RepairRules selects mobile-repair rules (internal/quality) to run
	// over every adapted document and subpage after the attribute
	// phase: a comma-separated rule list, or "all". Empty disables the
	// pass. Unknown rule names are a construction error.
	RepairRules string
	// ParityCheck enables the content-parity validator: every build
	// inventories origin vs adapted text/links/forms, records the score
	// in metrics, notes, and the /debug/parity report.
	ParityCheck bool
	// ParityMinScore, with ParityCheck, fails the build loudly when the
	// parity score drops below it (0 disables the hard gate; 1 demands
	// every non-sanctioned content item survive adaptation).
	ParityMinScore float64
	// Cluster, when non-nil, routes cold non-personalized builds to the
	// bundle key's consistent-hash ring owner (internal/cluster) before
	// spending a local pipeline run. Personalized sessions always build
	// locally (sticky routing). Requires PersistBundles — without a
	// bundle key there is nothing to route by.
	Cluster ClusterHook
}

// DefaultATFHeight is the above-the-fold boundary (in scaled snapshot
// pixels) when streaming is on and no ATFHeight is configured — a
// typical small-screen viewport height.
const DefaultATFHeight = 480

// DefaultBundleTTL is the persisted-bundle lifetime when PersistBundles
// is on and no BundleTTL is configured.
const DefaultBundleTTL = time.Hour

// TraceHeader is the response header carrying the request's trace ID;
// the same ID keys the request's /debug/traces entry and its "trace"
// slog attribute, so client reports, traces, and logs correlate.
const TraceHeader = "X-MSite-Trace"

// SessionCapRetryAfter is the Retry-After hint sent with 503s caused by
// the -max-sessions cap: sessions free up on the idle-GC timescale, not
// the pipeline one.
const SessionCapRetryAfter = 30 * time.Second

// DefaultStaleFor is how long past its TTL a shared snapshot stays
// servable when ServeStale is on and no StaleFor is configured.
const DefaultStaleFor = 5 * time.Minute

// Stats counts proxy work for the scalability experiments.
type Stats struct {
	// Requests is every proxied request.
	Requests uint64
	// Adaptations is full adaptation passes (fetch+filter+attr).
	Adaptations uint64
	// SnapshotRenders is server-side graphical renders (the expensive
	// browser-path work).
	SnapshotRenders uint64
	// SnapshotHits is snapshots served from the shared cache.
	SnapshotHits uint64
}

// Proxy is the m.Site content adaptation proxy for one origin page.
type Proxy struct {
	cfg        Config
	dispatcher *ajax.Dispatcher
	applier    *attr.Applier
	engines    *render.EngineSet
	width      int
	prefix     string
	obs        *obs.Registry
	logger     *slog.Logger
	rasterWork int
	writeWork  int
	staleFor   time.Duration
	// bundleKey is the durable-bundle cache key for this proxy's
	// (site, spec hash, device class, fidelity); empty when
	// PersistBundles is off.
	bundleKey string
	bundleTTL time.Duration
	// bundleVal mirrors the persisted bundle's validator in memory so the
	// prefetch refresher reads it without decoding the stored bundle
	// (valMu-guarded; populated by saveBundle and loadBundle).
	valMu     sync.Mutex
	bundleVal BundleValidator

	// Work counters are atomic (not under mu) so Stats() snapshots and
	// metric scrapes never contend with the adaptation hot path.
	nRequests        atomic.Uint64
	nAdaptations     atomic.Uint64
	nSnapshotRenders atomic.Uint64
	nSnapshotHits    atomic.Uint64

	// coalesce collapses concurrent cold adaptations of the same page
	// across sessions into one pipeline run (admission control tier 2);
	// personalized sessions bypass it.
	coalesce *admission.Coalescer[*builtAdaptation]

	mu       sync.Mutex
	adapted  map[string]*adaptation // by session ID
	inflight map[string]chan struct{}

	// snapGen versions the full-fidelity snapshot URL on the streaming
	// path, so the coarse-first overlay's upgrade reference never hits a
	// client cache entry from a previous render generation.
	snapGen atomic.Uint64
	// snaps tracks per-session background snapshot renders; the asset
	// handler waits on them instead of 404ing a not-yet-written file.
	snapMu sync.Mutex
	snaps  map[string]*snapState

	// repairRules is the parsed RepairRules pass (nil when disabled);
	// lastParity is the most recent parity report for /debug/parity.
	repairRules []quality.Rule
	lastParity  atomic.Pointer[quality.Parity]
}

// adaptation is one session's generated content.
type adaptation struct {
	subpages map[string]*attr.Subpage
	notes    []string
	when     time.Time
	// images are the decoded subresources downloaded on the client's
	// behalf, reused for the snapshot render.
	images map[string]image.Image
}

// New validates the config and builds the proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Spec == nil {
		return nil, errors.New("proxy: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sessions == nil {
		return nil, errors.New("proxy: nil session manager")
	}
	if cfg.Cache == nil {
		return nil, errors.New("proxy: nil cache")
	}
	width := cfg.ViewportWidth
	if width == 0 {
		width = cfg.Spec.ViewportWidth
	}
	if width == 0 {
		width = layout.DefaultViewport.Width
	}
	dispatcher, err := ajax.NewDispatcher(cfg.Spec.Actions, cfg.Cache)
	if err != nil {
		return nil, err
	}
	prefix := strings.TrimSuffix(cfg.PathPrefix, "/")
	if prefix != "" && !strings.HasPrefix(prefix, "/") {
		return nil, fmt.Errorf("proxy: path prefix %q must start with /", cfg.PathPrefix)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg.Sessions.InstrumentObs(reg)
	if cfg.FetchWorkers > 0 {
		cfg.FetchOptions = append(cfg.FetchOptions, fetch.WithWorkers(cfg.FetchWorkers))
	}
	writeWork := cfg.WriteWorkers
	if writeWork <= 0 {
		writeWork = 4
	}
	staleFor := cfg.StaleFor
	if cfg.ServeStale && staleFor <= 0 {
		staleFor = DefaultStaleFor
	}
	if cfg.Admission != nil {
		cfg.Admission.SetObs(reg)
	}
	p := &Proxy{
		cfg:        cfg,
		dispatcher: dispatcher,
		engines:    render.NewEngineSet(),
		width:      width,
		prefix:     prefix,
		obs:        reg,
		logger:     cfg.Logger,
		rasterWork: cfg.RasterWorkers,
		writeWork:  writeWork,
		staleFor:   staleFor,
		coalesce:   admission.NewCoalescer[*builtAdaptation](),
		adapted:    make(map[string]*adaptation),
		inflight:   make(map[string]chan struct{}),
		snaps:      make(map[string]*snapState),
	}
	if cfg.RepairRules != "" {
		rules, err := quality.ParseRules(cfg.RepairRules)
		if err != nil {
			return nil, fmt.Errorf("proxy: %w", err)
		}
		p.repairRules = rules
	}
	if cfg.PersistBundles {
		key, err := bundleKey(cfg.Spec, width)
		if err != nil {
			return nil, err
		}
		p.bundleKey = key
		p.bundleTTL = cfg.BundleTTL
		if p.bundleTTL <= 0 {
			p.bundleTTL = DefaultBundleTTL
		}
	}
	// Release per-session adaptation state when the session manager
	// expires, deletes, or GCs the session — without this the adapted
	// map grows for the life of the proxy.
	cfg.Sessions.OnExpire(func(id string) {
		p.mu.Lock()
		delete(p.adapted, id)
		p.mu.Unlock()
		p.snapMu.Lock()
		delete(p.snaps, id)
		p.snapMu.Unlock()
	})
	p.applier = &attr.Applier{
		ViewportWidth: width,
		SubpageURL:    func(name string) string { return prefix + "/subpage/" + url.PathEscape(name) },
		AssetURL:      func(name string) string { return prefix + "/asset/" + url.PathEscape(name) },
		AJAXEndpoint:  prefix + "/ajax",
	}
	return p, nil
}

// Stats returns a snapshot of the proxy counters. It reads atomics —
// never the proxy mutex — so it is safe to poll at any rate.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:        p.nRequests.Load(),
		Adaptations:     p.nAdaptations.Load(),
		SnapshotRenders: p.nSnapshotRenders.Load(),
		SnapshotHits:    p.nSnapshotHits.Load(),
	}
}

// Obs exposes the proxy's metric registry (shared with core when wired
// through it).
func (p *Proxy) Obs() *obs.Registry { return p.obs }

// handlerKind classifies a proxy-relative path for metrics, traces, and
// logs.
func handlerKind(path string) string {
	switch {
	case path == "/":
		return "entry"
	case strings.HasPrefix(path, "/subpage/"):
		return "subpage"
	case strings.HasPrefix(path, "/asset/"):
		return "asset"
	case path == "/ajax":
		return "ajax"
	case path == "/auth":
		return "auth"
	case path == "/login":
		return "login"
	case path == "/logout":
		return "logout"
	case path == "/stats":
		return "stats"
	default:
		return "notfound"
	}
}

// statusRecorder captures the response status for metrics and logging.
// It forwards the optional ResponseWriter interfaces the stdlib sniffs
// for: Flush (streaming handlers stall behind a recorder that hides
// http.Flusher) and ReadFrom (the sendfile fast path io.Copy probes
// for).
type statusRecorder struct {
	http.ResponseWriter
	status int
	// firstByte is when the response first became visible to the client
	// (first body write, explicit header commit, or flush) — the
	// server-side TTFB mark the streaming histograms observe.
	firstByte time.Time
}

// markFirstByte stamps the first moment response bytes leave the
// handler; later calls are no-ops.
func (r *statusRecorder) markFirstByte() {
	if r.firstByte.IsZero() {
		r.firstByte = time.Now()
	}
}

// WriteHeader implements http.ResponseWriter.
func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.markFirstByte()
	r.ResponseWriter.WriteHeader(code)
}

// Write implements io.Writer, stamping TTFB on the first body write.
func (r *statusRecorder) Write(b []byte) (int, error) {
	r.markFirstByte()
	return r.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does;
// otherwise it is a no-op rather than a panic. The streaming entry
// path depends on this passthrough: a recorder that hid Flusher would
// buffer the early-flushed head until the handler returned.
func (r *statusRecorder) Flush() {
	r.markFirstByte()
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom preserves the underlying writer's io.ReaderFrom fast path
// (sendfile on *http.response); without it io.Copy falls back to the
// buffered loop for every recorder-wrapped response.
func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	r.markFirstByte()
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	// Copy through the plain Writer; going through r itself would
	// recurse into this method forever.
	return io.Copy(struct{ io.Writer }{r.ResponseWriter}, src)
}

// ServeHTTP implements http.Handler. Every request is counted, traced
// (the trace lands in the obs ring buffer for /debug/traces), timed into
// a per-handler latency histogram, and optionally logged.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.nRequests.Add(1)
	reqStart := time.Now()

	path := r.URL.Path
	if p.prefix != "" {
		if !strings.HasPrefix(path, p.prefix) {
			http.NotFound(w, r)
			return
		}
		path = strings.TrimPrefix(path, p.prefix)
		if path == "" {
			path = "/"
		}
	}

	kind := handlerKind(path)
	site := p.cfg.Spec.Name
	p.obs.Counter("msite_proxy_requests_total", "handler", kind, "site", site).Inc()
	if p.cfg.Demand != nil && (kind == "entry" || kind == "subpage") {
		p.cfg.Demand(site)
	}
	ctx, tr := p.obs.StartTrace(r.Context(), kind)
	r = r.WithContext(ctx)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	// The trace ID goes back to the client so a slow or failed request
	// can be matched to its /debug/traces entry and log lines.
	rec.Header().Set(TraceHeader, tr.ID())

	if ok, retry := p.allowClient(r); !ok {
		obs.TraceFrom(ctx).Annotate("shed", admission.ReasonRateLimit)
		rec.Header().Set("Retry-After", strconv.Itoa(admission.RetryAfterSeconds(retry)))
		http.Error(rec, "rate limit exceeded, retry later", http.StatusTooManyRequests)
		d := tr.End()
		p.obs.Histogram("msite_http_request_seconds", "handler", kind).ObserveDuration(d)
		p.logRequest(r, tr, kind, rec.status, d)
		return
	}

	switch kind {
	case "entry":
		p.handleEntry(rec, r)
	case "subpage":
		p.handleSubpage(rec, r, strings.TrimPrefix(path, "/subpage/"))
	case "asset":
		p.handleAsset(rec, r, strings.TrimPrefix(path, "/asset/"))
	case "ajax":
		p.handleAJAX(rec, r)
	case "auth":
		p.handleAuth(rec, r)
	case "login":
		p.handleLogin(rec, r)
	case "logout":
		p.handleLogout(rec, r)
	case "stats":
		p.handleStats(rec, r)
	default:
		http.NotFound(rec, r)
	}

	d := tr.End()
	p.obs.Histogram("msite_http_request_seconds", "handler", kind).ObserveDuration(d)
	if !rec.firstByte.IsZero() {
		p.obs.Histogram("msite_proxy_ttfb_seconds", "handler", kind).
			ObserveDuration(rec.firstByte.Sub(reqStart))
	}
	if rec.status >= 500 {
		p.obs.Counter("msite_proxy_errors_total", "handler", kind, "site", site).Inc()
	}
	p.logRequest(r, tr, kind, rec.status, d)
}

// allowClient applies the per-client token bucket (admission control
// tier 3). Requests from clients with a session cookie are keyed by the
// cookie value (NATed users stay independent); cookieless first contacts
// fall back to the remote address.
func (p *Proxy) allowClient(r *http.Request) (bool, time.Duration) {
	return p.cfg.Admission.AllowClient(clientKey(r))
}

// clientKey derives the rate-limit bucket key for a request.
func clientKey(r *http.Request) string {
	if c, err := r.Cookie(session.CookieName); err == nil && c.Value != "" {
		return "s:" + c.Value
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "a:" + r.RemoteAddr
	}
	return "a:" + host
}

// serverError answers a failed request with a generic body: the error
// detail goes onto the request trace (and, through it, into the
// structured error log line), never into client-visible bytes.
func (p *Proxy) serverError(w http.ResponseWriter, r *http.Request, status int, public string, err error) {
	if err != nil {
		obs.TraceFrom(r.Context()).Annotate("error", err.Error())
	}
	http.Error(w, public, status)
}

// shedError answers an admission-shed request: 503 (or 429 for rate
// limiting) with a Retry-After hint and a generic body, counted under
// msite_admission_shed_total by reason.
func (p *Proxy) shedError(w http.ResponseWriter, r *http.Request, shed *admission.ShedError, err error) {
	p.obs.Counter("msite_admission_shed_total", "reason", shed.Reason).Inc()
	if shed.Reason == admission.ReasonSessionCap {
		// Limiter and rate-limiter sheds already emit from their own
		// SetObs hooks; the session cap is shed here in the proxy.
		p.obs.Emit(obs.EventShed, shed.Reason)
	}
	obs.TraceFrom(r.Context()).Annotate("shed", shed.Reason)
	w.Header().Set("Retry-After", strconv.Itoa(admission.RetryAfterSeconds(shed.RetryAfter)))
	status := http.StatusServiceUnavailable
	if shed.Reason == admission.ReasonRateLimit {
		status = http.StatusTooManyRequests
	}
	p.serverError(w, r, status, "server busy, retry later", err)
}

// logRequest emits the per-request structured log line.
func (p *Proxy) logRequest(r *http.Request, tr *obs.Trace, kind string, status int, d time.Duration) {
	if p.logger == nil {
		return
	}
	level := slog.LevelInfo
	if status >= 500 {
		level = slog.LevelError
	}
	attrs := []slog.Attr{
		slog.String("trace", tr.ID()),
		slog.String("site", p.cfg.Spec.Name),
		slog.String("handler", kind),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("duration", d),
	}
	noted := tr.Attrs()
	keys := make([]string, 0, len(noted))
	for k := range noted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		attrs = append(attrs, slog.String(k, noted[k]))
	}
	p.logger.LogAttrs(r.Context(), level, "request", attrs...)
}

// handleLogin marshals the origin's form login through the proxy: the
// mobile client submits the lightweight form, the proxy replays it
// against the origin with the session's cookie jar, and the jar picks up
// the origin's authentication cookies.
func (p *Proxy) handleLogin(w http.ResponseWriter, r *http.Request) {
	loginCfg := p.cfg.Spec.Login
	if loginCfg.URL == "" {
		http.NotFound(w, r)
		return
	}
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>Log in</title>
<meta name="viewport" content="width=device-width, initial-scale=1"></head>
<body><h3>Log in</h3>
<form method="post" action="%s/login">
<p><input type="text" name="username" placeholder="User"></p>
<p><input type="password" name="password" placeholder="Password"></p>
<p><input type="submit" value="Log in"></p>
</form></body></html>`, p.prefix)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	userField := loginCfg.UserField
	if userField == "" {
		userField = "username"
	}
	passField := loginCfg.PassField
	if passField == "" {
		passField = "password"
	}
	f := fetch.New(sess, p.cfg.FetchOptions...)
	_, err := f.PostFormContext(r.Context(), loginCfg.URL, url.Values{
		userField: {r.FormValue("username")},
		passField: {r.FormValue("password")},
	})
	if err != nil {
		obs.TraceFrom(r.Context()).Annotate("error", err.Error())
		http.Error(w, "login failed", http.StatusForbidden)
		return
	}
	// The session now carries a marshaled origin login: its adaptations
	// are user-specific and must never coalesce with other sessions'.
	sess.MarkPersonalized()
	// Re-adapt: the logged-in origin page may differ.
	p.mu.Lock()
	delete(p.adapted, sess.ID)
	p.mu.Unlock()
	http.Redirect(w, r, p.prefix+"/", http.StatusSeeOther)
}

// handleStats reports the proxy's work counters for operations and the
// scalability experiments, plus any adaptation notes (objects whose
// selectors matched nothing, failed relocations) the administrator
// should see. The counters come from the same atomics the obs registry
// reads; /metrics is the richer surface (histograms, per-handler
// series), this endpoint stays for backward compatibility.
func (p *Proxy) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := p.Stats()
	p.mu.Lock()
	noteSet := make(map[string]bool)
	for _, ad := range p.adapted {
		for _, note := range ad.notes {
			noteSet[note] = true
		}
	}
	p.mu.Unlock()
	notes := make([]string, 0, len(noteSet))
	for note := range noteSet {
		notes = append(notes, note)
	}
	sort.Strings(notes)
	payload := map[string]any{
		"requests":         stats.Requests,
		"adaptations":      stats.Adaptations,
		"snapshot_renders": stats.SnapshotRenders,
		"snapshot_hits":    stats.SnapshotHits,
		"sessions":         p.cfg.Sessions.Len(),
		"notes":            notes,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(payload)
}

// ensureSession wraps session issuance with error reporting. The
// -max-sessions cap surfaces as a 503 shed with a Retry-After on the
// session-GC timescale; other failures are generic 500s.
func (p *Proxy) ensureSession(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	sess, err := p.cfg.Sessions.Ensure(w, r)
	if err != nil {
		if errors.Is(err, session.ErrTooManySessions) {
			p.shedError(w, r, &admission.ShedError{
				Reason:     admission.ReasonSessionCap,
				RetryAfter: SessionCapRetryAfter,
			}, err)
			return nil, false
		}
		p.serverError(w, r, http.StatusInternalServerError, "session unavailable", err)
		return nil, false
	}
	obs.TraceFrom(r.Context()).Annotate("session", sess.ID)
	return sess, true
}

// ensureAdaptation runs the full pipeline for a session once (or again
// with ?refresh=1): fetch, filter phase, Tidy parse, attribute phase,
// file generation.
func (p *Proxy) ensureAdaptation(ctx context.Context, sess *session.Session, force bool) (*adaptation, error) {
	// Single-flight per session: concurrent first requests (a mobile
	// browser fetching the entry page and a subpage in parallel) must
	// not run the fetch+adapt pipeline twice or race on the session
	// directory.
	for {
		p.mu.Lock()
		if ad, ok := p.adapted[sess.ID]; ok && !force {
			p.mu.Unlock()
			return ad, nil
		}
		if wait, busy := p.inflight[sess.ID]; busy {
			p.mu.Unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			force = false // the racing adaptation satisfies a refresh too
			continue
		}
		done := make(chan struct{})
		p.inflight[sess.ID] = done
		p.mu.Unlock()

		ad, err := p.runAdaptation(ctx, sess, force)

		p.mu.Lock()
		delete(p.inflight, sess.ID)
		prev := p.adapted[sess.ID]
		if err == nil {
			p.adapted[sess.ID] = ad
		}
		p.mu.Unlock()
		close(done)
		if err != nil && p.cfg.ServeStale && prev != nil && !isAuthError(err) {
			// The origin is unreachable but this session was adapted
			// before: serve the previous adaptation rather than fail the
			// request (§3.2's "any error handling should the page be
			// unavailable", resolved in favor of availability).
			p.obs.Counter("msite_proxy_stale_served_total", "site", p.cfg.Spec.Name).Inc()
			obs.TraceFrom(ctx).Annotate("degraded", "stale_adaptation")
			return prev, nil
		}
		return ad, err
	}
}

// isAuthError reports whether err is an origin auth challenge, which
// must surface to the client (as a redirect to the auth page) rather
// than degrade to stale content.
func isAuthError(err error) bool {
	var authErr *fetch.AuthRequiredError
	return errors.As(err, &authErr)
}

// runAdaptation admits one pipeline run through the admission
// controller and executes it. Anonymous sessions coalesce: a flash
// crowd of N cold clients on the same page shares one build (one origin
// fetch, one filter+attr pass, one admission slot) and then installs
// the shared product into each session's directory. Personalized
// sessions (stored HTTP auth, marshaled logins) never coalesce — their
// origin content may differ per user.
func (p *Proxy) runAdaptation(ctx context.Context, sess *session.Session, force bool) (*adaptation, error) {
	// Non-personalized builds may come out of the durable bundle instead
	// of the pipeline: a restarted proxy warm-starts from its store. A
	// forced refresh (?refresh=1) bypasses and overwrites the bundle.
	usePersist := p.bundleKey != "" && !sess.Personalized()
	build := func(bctx context.Context) (*builtAdaptation, error) {
		if usePersist && !force {
			if b, ok := p.loadBundle(bctx); ok {
				return b, nil
			}
			// Cold here: in cluster mode the ring owner may already have
			// (or be building) this bundle — fetch it instead of running
			// the pipeline. The owner's admission controller holds the
			// build's one slot; this node spends none.
			if b, ok := p.fetchFromOwner(bctx); ok {
				return b, nil
			}
		}
		release, err := p.cfg.Admission.Acquire(bctx)
		if err != nil {
			return nil, err
		}
		defer release()
		b, err := p.buildAdaptation(bctx, fetch.New(sess, p.cfg.FetchOptions...))
		if err == nil && usePersist {
			p.saveBundle(b)
		}
		return b, err
	}
	var (
		b         *builtAdaptation
		coalesced bool
		err       error
	)
	if sess.Personalized() {
		// Sticky routing: a session-bearing build never leaves this node
		// (its origin content may be user-specific, and its session state
		// lives here).
		if p.cfg.Cluster != nil {
			obs.TraceFrom(ctx).Annotate("cluster", "sticky_local")
		}
		b, err = build(ctx)
	} else {
		b, coalesced, err = p.coalesce.Do(ctx, "adapt:"+p.cfg.Spec.Name, build)
	}
	if err != nil {
		return nil, err
	}
	if coalesced {
		p.obs.Counter("msite_admission_coalesced_total", "site", p.cfg.Spec.Name).Inc()
		obs.TraceFrom(ctx).Annotate("coalesced", "adaptation")
	}
	return p.installAdaptation(sess, b)
}

// builtAdaptation is the session-independent product of one pipeline
// run: the subpage set, notes, decoded images, and the serialized files
// to install under a session directory. One build may be installed into
// many sessions when cold requests coalesce.
type builtAdaptation struct {
	subpages map[string]*attr.Subpage
	notes    []string
	images   map[string]image.Image
	files    []buildFile
	// validator is the origin's freshness evidence from this build's
	// entry fetch, persisted with the bundle (v2) so the prefetch
	// refresher can revalidate instead of re-downloading.
	validator BundleValidator
}

// buildFile is one generated file, named relative to a session
// directory ("pages" or "images").
type buildFile struct {
	dir  string
	name string
	data []byte
	kind string
}

// buildAdaptation runs the fetch → filter → attribute → serialization
// pipeline, recording one span per stage (plus an adapt_total envelope)
// into the request trace and the per-stage latency histograms. The
// origin fetch and every subresource download abort when ctx ends, so a
// disconnected client stops costing the origin anything.
func (p *Proxy) buildAdaptation(ctx context.Context, f *fetch.Fetcher) (*builtAdaptation, error) {
	total := obs.StartSpan(ctx, "adapt_total")
	defer total.End()

	sp := obs.StartSpan(ctx, "fetch")
	page, err := f.GetContext(ctx, p.cfg.Spec.Origin)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Every stage past the fetch degrades instead of failing: a broken
	// filter serves the unfiltered source, missing stylesheets render
	// unstyled, a failed attribute phase serves the tidied document
	// whole. The best page we can build beats a 502.
	var degraded []string

	// Filter phase: cheap source-level transforms first (§3.2).
	sp = obs.StartSpan(ctx, "filter")
	src, err := filter.Apply(string(page.Body), p.cfg.Spec.Filters)
	sp.End()
	if err != nil {
		src = string(page.Body)
		degraded = append(degraded, p.degrade(ctx, "filter", err))
	}

	// Inline the origin's linked stylesheets so the attribute phase and
	// every render below see the site's real styling, then download the
	// images a render would need (§3.2: the page fetch "includes
	// downloading any images to be rendered"), then run the attribute
	// phase over the tidied DOM.
	sp = obs.StartSpan(ctx, "subres")
	doc := tidyDoc(src)
	if _, err := f.InlineStylesheetsContext(ctx, doc, page.URL); err != nil {
		degraded = append(degraded, p.degrade(ctx, "stylesheets", err))
	}
	images := fetchImages(ctx, f, doc, page.URL)
	sp.End()
	applier := *p.applier // copy: Images are per-fetch
	applier.Images = images
	sp = obs.StartSpan(ctx, "attr")
	result, err := applier.Apply(p.cfg.Spec, doc)
	if err != nil {
		degraded = append(degraded, p.degrade(ctx, "attributes", err))
		result = &attr.Result{Doc: doc}
	}
	sp.End()

	// Quality pass (post-attr hook): repair rules over the adapted
	// closure, then content parity against the raw origin — before URL
	// re-anchoring so origin and adapted hrefs still compare equal.
	if err := p.qualityPass(ctx, page, result); err != nil {
		return nil, err
	}

	// Re-anchor origin-relative URLs: adapted pages are served from the
	// proxy host, so links back into the origin must be absolute, while
	// proxy-internal references (subpages, assets, rewritten AJAX calls)
	// stay local.
	sp = obs.StartSpan(ctx, "absolutize")
	skip := []string{
		p.prefix + "/subpage/", p.prefix + "/asset/", p.prefix + "/ajax",
		p.prefix + "/login", p.prefix + "/logout", p.prefix + "/auth",
	}
	attr.AbsolutizeURLs(result.Doc, page.URL, skip...)
	for _, sub := range result.Subpages {
		attr.AbsolutizeURLs(sub.Doc, page.URL, skip...)
	}
	sp.End()

	// Serialize the generated files (§3.2: "All of the files generated
	// during a user's session are stored in the file system under a
	// (protected) subdirectory"). The serialization (DOM walks) happens
	// here, once per build; the writes happen per session in
	// installAdaptation.
	sp = obs.StartSpan(ctx, "subpage_split")
	defer sp.End()
	b := &builtAdaptation{
		subpages: make(map[string]*attr.Subpage),
		images:   images,
		validator: BundleValidator{
			ETag:         page.ETag,
			LastModified: page.LastModified,
			FetchedAt:    time.Now(),
		},
	}
	for _, sub := range result.Subpages {
		b.subpages[sub.Name] = sub
		b.files = append(b.files, buildFile{
			dir:  "pages",
			name: attr.SubpageFileName(sub.Name),
			data: attr.SerializeSubpage(sub),
			kind: "subpage",
		})
		if len(sub.ImageData) > 0 {
			b.files = append(b.files, buildFile{
				dir:  "images",
				name: attr.AssetFileName(sub),
				data: sub.ImageData,
				kind: "asset",
			})
		}
	}
	for _, asset := range result.Assets {
		b.files = append(b.files, buildFile{
			dir:  "images",
			name: asset.Name,
			data: asset.Data,
			kind: "thumbnail asset",
		})
	}
	// The adapted main document feeds the snapshot; serialize it for the
	// snapshot render (it excludes split-off objects, matching what the
	// overlay's regions index).
	b.files = append(b.files, buildFile{
		dir:  "pages",
		name: "main.html",
		data: pageHTML(result),
		kind: "main",
	})
	// The MAML-style minimal page is generated unconditionally: it is a
	// cheap DOM walk, and building it per-adaptation keeps the bundle
	// shape identical whether the serving mode is selected by the spec
	// attribute or the proxy flag.
	b.files = append(b.files, buildFile{
		dir:  "pages",
		name: "minimal.html",
		data: attr.MinimalMarkupHTML(p.cfg.Spec.Name, result.Doc),
		kind: "minimal",
	})
	b.notes = append(result.Notes, degraded...)

	p.nAdaptations.Add(1)
	p.obs.Counter("msite_proxy_adaptations_total", "site", p.cfg.Spec.Name).Inc()
	return b, nil
}

// installAdaptation writes a built adaptation's files into one
// session's protected directory. The resulting byte slices are written
// concurrently by a bounded worker set — subpage counts are small but
// each write is an independent fsync path, so overlapping them trims
// the tail of a cold adaptation.
func (p *Proxy) installAdaptation(sess *session.Session, b *builtAdaptation) (*adaptation, error) {
	pagesDir, err := sess.SubpageDir()
	if err != nil {
		return nil, err
	}
	imagesDir, err := sess.ImageDir()
	if err != nil {
		return nil, err
	}
	jobs := make([]writeJob, 0, len(b.files))
	for _, bf := range b.files {
		dir := pagesDir
		if bf.dir == "images" {
			dir = imagesDir
		}
		jobs = append(jobs, writeJob{path: filepath.Join(dir, bf.name), data: bf.data, kind: bf.kind})
	}
	if err := writeFiles(jobs, p.writeWork); err != nil {
		return nil, err
	}
	return &adaptation{
		subpages: b.subpages,
		notes:    b.notes,
		when:     time.Now(),
		images:   b.images,
	}, nil
}

// qualityPass is the post-attr quality hook: it runs the configured
// mobile-repair rules over the adapted entry document and every
// subpage, then (when ParityCheck is on) validates content parity of
// the raw origin against the adapted closure. A parity score below
// ParityMinScore fails the build — the one quality condition that is
// louder than degradation, because silently serving a page with
// missing content is exactly the failure mode this pass exists to
// catch.
func (p *Proxy) qualityPass(ctx context.Context, page *fetch.Page, result *attr.Result) error {
	if len(p.repairRules) == 0 && !p.cfg.ParityCheck {
		return nil
	}
	sp := obs.StartSpan(ctx, "quality")
	defer sp.End()
	site := p.cfg.Spec.Name

	roots := make([]*dom.Node, 0, 1+len(result.Subpages))
	roots = append(roots, result.Doc)
	for _, sub := range result.Subpages {
		roots = append(roots, sub.Doc)
	}

	for _, root := range roots {
		for rule, n := range quality.RepairAll(p.repairRules, root) {
			p.obs.Counter("msite_quality_repairs_total", "rule", rule, "site", site).Add(uint64(n))
			result.Notes = append(result.Notes,
				fmt.Sprintf("quality: repair rule %s made %d fixes", rule, n))
		}
	}

	if !p.cfg.ParityCheck {
		return nil
	}
	// The origin inventory comes from the *raw* body — before the filter
	// phase — so overzealous filters count as drops too. Subtracting the
	// sanctioned inventory exempts what the spec deliberately removes.
	originDoc := tidyDoc(string(page.Body))
	originInv := quality.InventoryOf(originDoc)
	originInv.Subtract(quality.SanctionedInventory(p.cfg.Spec, originDoc))
	par := quality.Compare(originInv, quality.InventoryOf(roots...))
	p.lastParity.Store(par)
	p.obs.Gauge("msite_quality_parity_score", "site", site).Set(par.Score)
	result.Notes = append(result.Notes, par.Notes()...)
	if min := p.cfg.ParityMinScore; min > 0 && !par.Ok(min) {
		p.obs.Counter("msite_quality_parity_failures_total", "site", site).Inc()
		obs.TraceFrom(ctx).Annotate("parity_failure",
			fmt.Sprintf("score %.4f < %.4f", par.Score, min))
		return fmt.Errorf(
			"proxy: content parity %.4f below minimum %.4f (%d of %d items missing: %d text, %d links, %d forms)",
			par.Score, min, par.MissingItems, par.TotalItems,
			par.TextMissing, par.LinksMissing, par.FormsMissing)
	}
	return nil
}

// ParityReport returns the most recent content-parity report, or nil
// when ParityCheck is off or no build has completed yet.
func (p *Proxy) ParityReport() *quality.Parity { return p.lastParity.Load() }

// degrade records one non-fatal pipeline-stage failure: the stage's
// output is dropped and adaptation continues with what it has. The
// failure lands on the request trace, in the degradation counter, and
// in the adaptation notes /stats reports.
func (p *Proxy) degrade(ctx context.Context, stage string, err error) string {
	p.obs.Counter("msite_proxy_degraded_total", "stage", stage, "site", p.cfg.Spec.Name).Inc()
	obs.TraceFrom(ctx).Annotate("degraded_"+stage, err.Error())
	return fmt.Sprintf("degraded %s: %v", stage, err)
}

// writeJob is one generated file of an adaptation.
type writeJob struct {
	path string
	data []byte
	kind string
}

// writeFiles writes every job with a bounded worker set (errgroup
// style): all writes are attempted concurrently up to the worker limit,
// workers drain early once a failure is recorded, and the first error
// is returned.
func writeFiles(jobs []writeJob, workers int) error {
	if len(jobs) == 0 {
		return nil
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			if err := os.WriteFile(job.path, job.data, 0o600); err != nil {
				return fmt.Errorf("proxy: writing %s: %w", job.kind, err)
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || failed.Load() {
					return
				}
				job := jobs[i]
				if err := os.WriteFile(job.path, job.data, 0o600); err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("proxy: writing %s: %w", job.kind, err)
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

func (p *Proxy) handleEntry(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	minimal := p.cfg.MinimalMarkup || p.cfg.Spec.MinimalMarkup
	if p.cfg.Stream && p.cfg.Spec.Snapshot.Enabled && !minimal {
		p.streamEntry(w, r, sess, start)
		return
	}
	ad, err := p.ensureAdaptation(r.Context(), sess, r.URL.Query().Get("refresh") == "1")
	if err != nil {
		p.fetchError(w, r, err)
		return
	}

	if minimal {
		// MAML-style mode: the compact layout-only page, no snapshot
		// work at all. Older persisted bundles predate minimal.html;
		// degrade to the adapted main page if it is missing.
		data, err := os.ReadFile(p.sessionFile(sess, "pages", "minimal.html"))
		if err != nil {
			data, err = os.ReadFile(p.sessionFile(sess, "pages", "main.html"))
		}
		if err != nil {
			p.serverError(w, r, http.StatusInternalServerError, "adaptation missing", err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(data)
		p.obs.Histogram("msite_proxy_atf_seconds", "site", p.cfg.Spec.Name, "mode", "minimal").
			ObserveDuration(time.Since(start))
		return
	}

	if !p.cfg.Spec.Snapshot.Enabled {
		// No snapshot: serve the adapted main page directly.
		data, err := os.ReadFile(p.sessionFile(sess, "pages", "main.html"))
		if err != nil {
			p.serverError(w, r, http.StatusInternalServerError, "adaptation missing", err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(data)
		return
	}

	snap, scale, width, height, err := p.snapshot(r.Context(), sess)
	if err != nil {
		// The graphical entry page is an enhancement over the adapted
		// document, not a prerequisite: if the render fails, degrade to
		// serving the adapted main page directly.
		_ = p.degrade(r.Context(), "snapshot", err)
		data, rerr := os.ReadFile(p.sessionFile(sess, "pages", "main.html"))
		if rerr != nil {
			p.fetchError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(data)
		return
	}
	_ = snap

	var subs []*attr.Subpage
	for _, sub := range ad.subpages {
		subs = append(subs, sub)
	}
	overlay := p.applier.BuildOverlayHTML(attr.Overlay{
		SnapshotURL: p.prefix + "/asset/snapshot" + snapshotFidelity(p.cfg.Spec).Ext(),
		Width:       width,
		Height:      height,
		Scale:       scale,
		Title:       p.cfg.Spec.Name,
	}, subs)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(overlay)
	// Buffered serving completes everything at once: the whole page is
	// the above-the-fold content.
	p.obs.Histogram("msite_proxy_atf_seconds", "site", p.cfg.Spec.Name, "mode", "buffered").
		ObserveDuration(time.Since(start))
}

func snapshotFidelity(s *spec.Spec) imaging.Fidelity {
	switch s.Snapshot.Fidelity {
	case "high":
		return imaging.FidelityHigh
	case "medium":
		return imaging.FidelityMedium
	case "thumb":
		return imaging.FidelityThumb
	default:
		return imaging.FidelityLow
	}
}

// snapshot renders (or fetches from the shared cache) the scaled entry
// snapshot, returning its bytes and geometry. The layout, raster, and
// encode stages of a cold render are recorded as spans; whether the
// snapshot came from the shared cache is annotated on the request trace.
func (p *Proxy) snapshot(ctx context.Context, sess *session.Session) (data []byte, scale float64, w, h int, err error) {
	fid := snapshotFidelity(p.cfg.Spec)
	scale = p.cfg.Spec.Snapshot.Scale
	if scale <= 0 {
		scale = 1
	}
	ttl := time.Duration(p.cfg.Spec.Snapshot.CacheTTLSeconds) * time.Second

	p.mu.Lock()
	var snapImages map[string]image.Image
	if ad, ok := p.adapted[sess.ID]; ok {
		snapImages = ad.images
	}
	p.mu.Unlock()

	// filled is atomic: with stale-while-revalidate the fill can run on a
	// background refresh goroutine while this request inspects it.
	var filled atomic.Bool
	fill := func() (cache.Entry, error) {
		filled.Store(true)
		p.nSnapshotRenders.Add(1)
		p.obs.Counter("msite_proxy_snapshot_renders_total", "site", p.cfg.Spec.Name).Inc()
		mainPath := p.sessionFile(sess, "pages", "main.html")
		src, err := os.ReadFile(mainPath)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("proxy: reading adapted main: %w", err)
		}
		sp := obs.StartSpan(ctx, "layout")
		doc := tidyDoc(string(src))
		res := layoutForDoc(doc, p.width)
		sp.End()
		sp = obs.StartSpan(ctx, "raster")
		img := raster.Paint(res, raster.Options{Images: snapImages, Workers: p.rasterWork})
		sp.End()
		sp = obs.StartSpan(ctx, "encode")
		scaled := imaging.ScaleFactor(img, scale)
		encoded, err := imaging.Encode(scaled, fid)
		sp.End()
		if err != nil {
			return cache.Entry{}, err
		}
		meta := fmt.Sprintf("%d,%d", scaled.Bounds().Dx(), scaled.Bounds().Dy())
		return cache.Entry{Data: encoded, MIME: fid.MIME() + ";" + meta}, nil
	}

	var entry cache.Entry
	if p.cfg.Spec.Snapshot.Shared && ttl > 0 {
		key := "snapshot:" + p.cfg.Spec.Name
		var stale bool
		if p.cfg.ServeStale && p.staleFor > 0 {
			// Stale-while-revalidate: an expired shared snapshot is served
			// immediately while a background goroutine re-renders it.
			entry, stale, err = p.cfg.Cache.GetOrFillStale(key, ttl, p.staleFor, fill)
		} else {
			entry, err = p.cfg.Cache.GetOrFill(key, ttl, fill)
		}
		if stale {
			p.nSnapshotHits.Add(1)
			p.obs.Counter("msite_proxy_snapshot_hits_total", "site", p.cfg.Spec.Name).Inc()
			obs.TraceFrom(ctx).Annotate("cache", "stale")
		} else if err == nil && !filled.Load() {
			// Served from the shared cache (either directly or by another
			// goroutine's single-flight fill) — the amortization §3.3 is
			// about.
			p.nSnapshotHits.Add(1)
			p.obs.Counter("msite_proxy_snapshot_hits_total", "site", p.cfg.Spec.Name).Inc()
			obs.TraceFrom(ctx).Annotate("cache", "hit")
		} else {
			obs.TraceFrom(ctx).Annotate("cache", "miss")
		}
	} else {
		entry, err = fill()
		obs.TraceFrom(ctx).Annotate("cache", "bypass")
	}
	if err != nil {
		return nil, 0, 0, 0, err
	}
	// Geometry rides in the MIME suffix; parse it back out.
	w, h = parseGeometry(entry.MIME)
	// Persist into the session image dir so /asset can serve it.
	imagesDir, derr := sess.ImageDir()
	if derr != nil {
		return nil, 0, 0, 0, derr
	}
	name := "snapshot" + fid.Ext()
	if werr := os.WriteFile(filepath.Join(imagesDir, name), entry.Data, 0o600); werr != nil {
		return nil, 0, 0, 0, fmt.Errorf("proxy: writing snapshot: %w", werr)
	}
	return entry.Data, scale, w, h, nil
}

func parseGeometry(mime string) (w, h int) {
	i := strings.LastIndexByte(mime, ';')
	if i < 0 {
		return 0, 0
	}
	parts := strings.SplitN(mime[i+1:], ",", 2)
	if len(parts) != 2 {
		return 0, 0
	}
	w, _ = strconv.Atoi(parts[0])
	h, _ = strconv.Atoi(parts[1])
	return w, h
}

func (p *Proxy) handleSubpage(w http.ResponseWriter, r *http.Request, rawName string) {
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	name, err := url.PathUnescape(rawName)
	if err != nil || name == "" {
		http.NotFound(w, r)
		return
	}
	ad, err := p.ensureAdaptation(r.Context(), sess, false)
	if err != nil {
		p.fetchError(w, r, err)
		return
	}
	if _, ok := ad.subpages[name]; !ok {
		http.NotFound(w, r)
		return
	}
	data, err := os.ReadFile(p.sessionFile(sess, "pages", attr.SubpageFileName(name)))
	if err != nil {
		p.serverError(w, r, http.StatusInternalServerError, "subpage missing", err)
		return
	}
	// The pluggable engine hook (§1: "multiple rendering engines to
	// produce HTML, static images, PDF, plain text ... at any point in
	// the rendering process"): ?format selects an alternate engine.
	if format := r.URL.Query().Get("format"); format != "" && format != "html" {
		engine, err := p.engines.Get(format)
		if err != nil {
			http.Error(w, "unknown format: "+format, http.StatusBadRequest)
			return
		}
		out, err := engine.Render(tidyDoc(string(data)), layout.Viewport{Width: p.width})
		if err != nil {
			p.serverError(w, r, http.StatusInternalServerError, "render failed", err)
			return
		}
		w.Header().Set("Content-Type", engine.MIME())
		_, _ = w.Write(out)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

func (p *Proxy) handleAsset(w http.ResponseWriter, r *http.Request, rawName string) {
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	name, err := url.PathUnescape(rawName)
	if err != nil || name == "" || strings.Contains(name, "/") || strings.Contains(name, "..") {
		http.NotFound(w, r)
		return
	}
	data, err := os.ReadFile(p.sessionFile(sess, "images", name))
	if err != nil {
		// A streaming entry references snapshot assets before the
		// background render has written them; wait for the render
		// instead of 404ing the race.
		data, err = p.awaitSnapshotAsset(r, sess, name)
		if err != nil {
			http.NotFound(w, r)
			return
		}
	}
	switch {
	case strings.HasSuffix(name, ".png"):
		w.Header().Set("Content-Type", "image/png")
	case strings.HasSuffix(name, ".jpg"):
		w.Header().Set("Content-Type", "image/jpeg")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	// Let the device cache images too: the shared snapshot for its
	// configured TTL, per-user renders briefly.
	if strings.HasPrefix(name, "snapshot") && p.cfg.Spec.Snapshot.CacheTTLSeconds > 0 {
		w.Header().Set("Cache-Control",
			"private, max-age="+strconv.Itoa(p.cfg.Spec.Snapshot.CacheTTLSeconds))
	} else {
		w.Header().Set("Cache-Control", "private, max-age=300")
	}
	// Conditional requests save the image bytes on revisits — the
	// dominant cost on 3G links.
	etag := fmt.Sprintf(`"%08x-%d"`, crc32.ChecksumIEEE(data), len(data))
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	_, _ = w.Write(data)
}

func (p *Proxy) handleAJAX(w http.ResponseWriter, r *http.Request) {
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("action"))
	if err != nil {
		http.Error(w, "bad action", http.StatusBadRequest)
		return
	}
	f := fetch.New(sess, p.cfg.FetchOptions...)
	data, err := p.dispatcher.DispatchContext(r.Context(), f, id, r.URL.Query().Get("p"))
	if err != nil {
		p.serverError(w, r, http.StatusBadGateway, "action failed", err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(data)
}

// handleAuth is the lightweight HTTP authentication page (§3.3): a
// minimal form whose credentials the proxy stores and replays on the
// client's behalf.
func (p *Proxy) handleAuth(w http.ResponseWriter, r *http.Request) {
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	back := r.URL.Query().Get("back")
	if back == "" || !strings.HasPrefix(back, "/") {
		back = p.prefix + "/"
	}
	host := r.URL.Query().Get("host")
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return
		}
		if host == "" {
			host = originHost(p.cfg.Spec.Origin)
		}
		sess.SetAuth(host, session.Credentials{
			User: r.FormValue("username"),
			Pass: r.FormValue("password"),
		})
		// Stored HTTP credentials make this session's origin view
		// user-specific; exclude it from cross-session coalescing.
		sess.MarkPersonalized()
		http.Redirect(w, r, back, http.StatusSeeOther)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>Authentication required</title>
<meta name="viewport" content="width=device-width, initial-scale=1"></head>
<body><h3>Authentication required</h3>
<form method="post" action="%s/auth?back=%s&host=%s">
<p><input type="text" name="username" placeholder="User"></p>
<p><input type="password" name="password" placeholder="Password"></p>
<p><input type="submit" value="Sign in"></p>
</form></body></html>`, p.prefix, url.QueryEscape(back), url.QueryEscape(host))
}

// handleLogout implements the replaced logout button: clear the proxy's
// cookie jar for this user.
func (p *Proxy) handleLogout(w http.ResponseWriter, r *http.Request) {
	sess, ok := p.ensureSession(w, r)
	if !ok {
		return
	}
	if err := sess.ClearCookies(); err != nil {
		p.serverError(w, r, http.StatusInternalServerError, "logout failed", err)
		return
	}
	p.mu.Lock()
	delete(p.adapted, sess.ID) // next visit re-fetches logged-out content
	p.mu.Unlock()
	http.Redirect(w, r, p.prefix+"/", http.StatusSeeOther)
}

// fetchError maps adaptation failures: auth challenges redirect to the
// lightweight auth page, admission sheds become 503 + Retry-After, and
// everything else is a gateway error (§3.2 "any error handling should
// the page be unavailable") with a generic body — the detail lands on
// the trace and in the error log, never in the response.
func (p *Proxy) fetchError(w http.ResponseWriter, r *http.Request, err error) {
	var authErr *fetch.AuthRequiredError
	if errors.As(err, &authErr) {
		u, _ := url.Parse(authErr.URL)
		host := ""
		if u != nil {
			host = u.Host
		}
		http.Redirect(w, r,
			p.prefix+"/auth?back="+url.QueryEscape(r.URL.RequestURI())+"&host="+url.QueryEscape(host),
			http.StatusSeeOther)
		return
	}
	if shed, ok := admission.IsShed(err); ok {
		p.shedError(w, r, shed, err)
		return
	}
	p.serverError(w, r, http.StatusBadGateway, "origin unavailable", err)
}

func (p *Proxy) sessionFile(sess *session.Session, sub, name string) string {
	return filepath.Join(sess.Dir, sub, name)
}

func originHost(origin string) string {
	u, err := url.Parse(origin)
	if err != nil {
		return ""
	}
	return u.Host
}
