package proxy

import (
	"context"
	"sync/atomic"
	"time"

	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/layout"
	"msite/internal/obs"
	"msite/internal/spec"
)

// This file is the proxy surface of cluster mode (internal/cluster):
// the requester side (fetchFromOwner, consulted on a cold
// non-personalized build before spending a local pipeline run) and the
// owner side (ClusterBuild/ClusterSnapshot, the cluster.Builder
// implementation the peer transport serves).

// ClusterHook is the requester-side routing seam the proxy consults on
// a cold build; *cluster.Node implements it. remote=false means this
// node owns the key (build locally as usual); remote=true with err set
// means the owner was tried and failed — the caller takes over locally.
type ClusterHook interface {
	FetchBundle(ctx context.Context, site, key string) (bundle []byte, snapshot *cache.Entry, remote bool, err error)
}

// BundleKeyForSpec computes the durable bundle key New would derive for
// this spec and viewport override — the ring routing key. Exported so
// core and the cluster experiments can predict a site's ring owner
// without constructing a proxy.
func BundleKeyForSpec(s *spec.Spec, viewportWidth int) (string, error) {
	width := viewportWidth
	if width == 0 {
		width = s.ViewportWidth
	}
	if width == 0 {
		width = layout.DefaultViewport.Width
	}
	return bundleKey(s, width)
}

// BundleKey returns this proxy's durable bundle key ("" when bundle
// persistence is off).
func (p *Proxy) BundleKey() string { return p.bundleKey }

// fetchFromOwner tries to satisfy a cold build from the key's ring
// owner. ok=false means the caller proceeds with a local build: this
// node owns the key, cluster mode is off, the peer's bundle didn't
// decode, or the owner is down (local takeover — availability over
// strict ownership; the hook has already marked the peer down and
// counted the fallback).
func (p *Proxy) fetchFromOwner(ctx context.Context) (*builtAdaptation, bool) {
	if p.cfg.Cluster == nil || p.bundleKey == "" {
		return nil, false
	}
	data, snap, remote, err := p.cfg.Cluster.FetchBundle(ctx, p.cfg.Spec.Name, p.bundleKey)
	if !remote {
		return nil, false
	}
	if err != nil {
		obs.TraceFrom(ctx).Annotate("cluster", "fallback_local")
		return nil, false
	}
	b, derr := decodeBundle(data)
	if derr != nil {
		obs.TraceFrom(ctx).Annotate("cluster", "bad_peer_bundle")
		return nil, false
	}
	// Seed the local tiers with the owner's product so the next cold
	// miss here (or a restart, via the durable tier) skips the hop too.
	p.cfg.Cache.Put(p.bundleKey, cache.Entry{Data: data, MIME: "application/x-msite-bundle"}, p.bundleTTL)
	p.setBundleValidator(b.validator)
	if snap != nil {
		if ttl := time.Duration(p.cfg.Spec.Snapshot.CacheTTLSeconds) * time.Second; p.cfg.Spec.Snapshot.Shared && ttl > 0 {
			key := "snapshot:" + p.cfg.Spec.Name
			if _, warm := p.cfg.Cache.Get(key); !warm {
				p.cfg.Cache.Put(key, *snap, ttl)
			}
		}
	}
	p.obs.Counter("msite_proxy_bundle_reuses_total", "site", p.cfg.Spec.Name).Inc()
	obs.TraceFrom(ctx).Annotate("cluster", "forwarded")
	return b, true
}

// ClusterBuild implements cluster.Builder: the owner-side build a peer
// transport request lands on. Like PrefetchBuild it reuses an existing
// bundle without a pipeline run, but the admission slot comes from the
// foreground lane — a forwarded live request is live load, and this
// slot (on the owner, not the requester) is the build's only one.
// Concurrent forwards and local cold builds of the same site coalesce
// into one pipeline run, which is what makes a cross-node flash crowd
// cost one build.
func (p *Proxy) ClusterBuild(ctx context.Context) ([]byte, bool, error) {
	if p.bundleKey == "" {
		return nil, false, ErrNoBundlePersistence
	}
	var ran atomic.Bool
	build := func(bctx context.Context) (*builtAdaptation, error) {
		if b, ok := p.loadBundle(bctx); ok {
			return b, nil
		}
		release, err := p.cfg.Admission.Acquire(bctx)
		if err != nil {
			return nil, err
		}
		defer release()
		b, err := p.buildAdaptation(bctx, fetch.New(nil, p.cfg.FetchOptions...))
		if err == nil {
			p.saveBundle(b)
			ran.Store(true)
		}
		return b, err
	}
	b, coalesced, err := p.coalesce.Do(ctx, "adapt:"+p.cfg.Spec.Name, build)
	if err != nil {
		return nil, false, err
	}
	if coalesced {
		p.obs.Counter("msite_admission_coalesced_total", "site", p.cfg.Spec.Name).Inc()
		obs.TraceFrom(ctx).Annotate("coalesced", "adaptation")
	}
	// Warm the shared snapshot too, so the requester's snapshot fetch
	// (and this node's next visitor) serves without a render.
	p.prerenderSnapshot(b)
	// Serve the stored bytes when present (saveBundle just put them, or
	// an earlier build did); re-encode only if the cache dropped them.
	if e, ok := p.cfg.Cache.Get(p.bundleKey); ok {
		return e.Data, ran.Load(), nil
	}
	data, err := encodeBundle(p.cfg.Spec.Name, b)
	if err != nil {
		return nil, false, err
	}
	return data, ran.Load(), nil
}

// ClusterSnapshot implements cluster.Builder: the shared snapshot
// entry, when this site has one warm.
func (p *Proxy) ClusterSnapshot() (cache.Entry, bool) {
	if !p.cfg.Spec.Snapshot.Shared {
		return cache.Entry{}, false
	}
	return p.cfg.Cache.Get("snapshot:" + p.cfg.Spec.Name)
}
