package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/imaging"
	"msite/internal/raster"
)

// This file is the proxy surface the prefetch crawler
// (internal/prefetch) drives: building a site's shared bundle ahead of
// demand, reading the persisted validator, and bumping the bundle's TTL
// when a conditional GET came back 304.

// ErrNoBundlePersistence reports a prefetch call against a proxy whose
// bundle persistence is off — there is nowhere to put the pre-built
// product.
var ErrNoBundlePersistence = errors.New("proxy: prefetch requires bundle persistence")

// PrefetchBuild builds (or verifies) this site's shared bundle off the
// live request path. With force false an existing bundle satisfies the
// call without a pipeline run; with force true the pipeline always runs
// and overwrites the bundle — the refresh path after the origin changed.
// The admission slot comes from the background lane, so a call under
// live load returns admission.ErrBackgroundBusy instead of queueing.
// Returns whether a pipeline build actually ran.
func (p *Proxy) PrefetchBuild(ctx context.Context, force bool) (bool, error) {
	if p.bundleKey == "" {
		return false, ErrNoBundlePersistence
	}
	var ran atomic.Bool
	build := func(bctx context.Context) (*builtAdaptation, error) {
		if !force {
			if b, ok := p.loadBundle(bctx); ok {
				return b, nil
			}
		}
		release, err := p.cfg.Admission.AcquireBackground(bctx)
		if err != nil {
			return nil, err
		}
		defer release()
		b, err := p.buildAdaptation(bctx, fetch.New(nil, p.cfg.FetchOptions...))
		if err == nil {
			p.saveBundle(b)
			ran.Store(true)
		}
		return b, err
	}
	// The coalesce key is shared with live cold adaptations: a prefetch
	// arriving while a live build runs joins it (and vice versa) instead
	// of fetching the origin twice.
	b, _, err := p.coalesce.Do(ctx, "adapt:"+p.cfg.Spec.Name, build)
	if err == nil && b != nil {
		p.prerenderSnapshot(b)
	}
	return ran.Load(), err
}

// prerenderSnapshot renders the shared entry snapshot from a bundle the
// prefetch path just built or loaded. Without this the crawler removes
// the pipeline cost of a cold miss but leaves the layout/raster/encode
// of the snapshot for the first live visitor; pre-filling the shared
// cache entry means that visitor serves entirely warm. Sites with
// per-session (non-shared) snapshots are skipped — there is no shared
// entry to warm.
func (p *Proxy) prerenderSnapshot(b *builtAdaptation) {
	ttl := time.Duration(p.cfg.Spec.Snapshot.CacheTTLSeconds) * time.Second
	if !p.cfg.Spec.Snapshot.Shared || ttl <= 0 {
		return
	}
	var src []byte
	for _, f := range b.files {
		if f.dir == "pages" && f.name == "main.html" {
			src = f.data
			break
		}
	}
	if src == nil {
		return
	}
	fill := func() (cache.Entry, error) {
		p.nSnapshotRenders.Add(1)
		p.obs.Counter("msite_proxy_snapshot_renders_total", "site", p.cfg.Spec.Name).Inc()
		doc := tidyDoc(string(src))
		res := layoutForDoc(doc, p.width)
		img := raster.Paint(res, raster.Options{Images: b.images, Workers: p.rasterWork})
		scale := p.cfg.Spec.Snapshot.Scale
		if scale <= 0 {
			scale = 1
		}
		fid := snapshotFidelity(p.cfg.Spec)
		scaled := imaging.ScaleFactor(img, scale)
		encoded, err := imaging.Encode(scaled, fid)
		if err != nil {
			return cache.Entry{}, err
		}
		meta := fmt.Sprintf("%d,%d", scaled.Bounds().Dx(), scaled.Bounds().Dy())
		return cache.Entry{Data: encoded, MIME: fid.MIME() + ";" + meta}, nil
	}
	// GetOrFill leaves an already-warm snapshot (live render or
	// disk-tier rehydration) alone.
	_, _ = p.cfg.Cache.GetOrFill("snapshot:"+p.cfg.Spec.Name, ttl, fill)
}

// BundleValidator returns the persisted bundle's origin validator. Zero
// when no bundle has been built or loaded this process lifetime, or when
// the bundle predates validator capture (wire version 1).
func (p *Proxy) BundleValidator() BundleValidator {
	p.valMu.Lock()
	defer p.valMu.Unlock()
	return p.bundleVal
}

// setBundleValidator records the validator of the bundle most recently
// saved or loaded.
func (p *Proxy) setBundleValidator(v BundleValidator) {
	p.valMu.Lock()
	p.bundleVal = v
	p.valMu.Unlock()
}

// TouchBundle restarts the persisted bundle's TTL — the 304 path: the
// origin proved the content unchanged, so the bundle earns a full new
// lifetime without being rewritten. Returns whether a live bundle was
// touched.
func (p *Proxy) TouchBundle() bool {
	if p.bundleKey == "" {
		return false
	}
	ok := p.cfg.Cache.Touch(p.bundleKey, p.bundleTTL)
	if ok {
		p.valMu.Lock()
		p.bundleVal.FetchedAt = time.Now()
		p.valMu.Unlock()
	}
	return ok
}

// Origin returns the entry-page URL this proxy adapts — the prefetch
// crawler's crawl root for the site.
func (p *Proxy) Origin() string { return p.cfg.Spec.Origin }

// SiteName returns the spec name identifying this proxy's site.
func (p *Proxy) SiteName() string { return p.cfg.Spec.Name }

// PrefetchFetcher returns an anonymous fetcher configured like the
// build pipeline's (same timeout, retry, and breaker wiring) for the
// crawler's link-graph walks and conditional revalidation probes.
func (p *Proxy) PrefetchFetcher() *fetch.Fetcher {
	return fetch.New(nil, p.cfg.FetchOptions...)
}
