package proxy

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"msite/internal/admission"
	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/obs"
	"msite/internal/session"
	"msite/internal/spec"
)

// MultiProxy hosts the adaptation proxies for several pages of a site
// under one server: each spec mounts at /p/<name>/, sharing one session
// manager (one cookie covers the whole site) and one public render
// cache. The paper generates one proxy file per adapted page; this is
// the deployment convenience of serving them together.
type MultiProxy struct {
	sites map[string]*Proxy
	names []string
	obs   *obs.Registry
}

// MultiConfig wires a MultiProxy.
type MultiConfig struct {
	// Specs are the adaptation specs, one per page; names must be unique
	// and URL-safe.
	Specs []*spec.Spec
	// Sessions and Cache are shared across every site (required); Cache
	// may be a *cache.Cache or a durable *cache.Tiered.
	Sessions *session.Manager
	Cache    cache.Layer
	// ViewportWidth and FetchOptions apply to every site.
	ViewportWidth int
	FetchOptions  []fetch.Option
	// Obs is the metric registry shared by every site (the site label
	// distinguishes them). Nil creates one.
	Obs *obs.Registry
	// Logger enables per-request structured logging on every site.
	Logger *slog.Logger
	// FetchWorkers, RasterWorkers, and WriteWorkers are the adaptation
	// parallelism knobs, applied to every site (see Config).
	FetchWorkers  int
	RasterWorkers int
	WriteWorkers  int
	// ServeStale and StaleFor are the staleness knobs, applied to every
	// site (see Config).
	ServeStale bool
	StaleFor   time.Duration
	// Stream, ATFHeight, SnapshotProgressive, and MinimalMarkup are the
	// streaming-path knobs, applied to every site (see Config).
	Stream              bool
	ATFHeight           int
	SnapshotProgressive bool
	MinimalMarkup       bool
	// Admission is the overload-protection controller, shared by every
	// site: one concurrency budget and one per-client rate limit cover
	// the whole server, not each page separately. Nil admits everything.
	Admission *admission.Controller
	// PersistBundles and BundleTTL are the durable-store knobs, applied
	// to every site (see Config).
	PersistBundles bool
	BundleTTL      time.Duration
	// Demand is the live-traffic feed for the prefetch crawler's demand
	// ranking, applied to every site (see Config).
	Demand func(site string)
	// RepairRules, ParityCheck, and ParityMinScore are the adaptation
	// quality knobs, applied to every site (see Config).
	RepairRules    string
	ParityCheck    bool
	ParityMinScore float64
	// Cluster is the consistent-hash routing hook, shared by every site
	// (see Config.Cluster).
	Cluster ClusterHook
}

// NewMulti builds the composite proxy.
func NewMulti(cfg MultiConfig) (*MultiProxy, error) {
	if len(cfg.Specs) == 0 {
		return nil, errors.New("proxy: no specs")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &MultiProxy{sites: make(map[string]*Proxy, len(cfg.Specs)), obs: reg}
	for _, sp := range cfg.Specs {
		if sp == nil {
			return nil, errors.New("proxy: nil spec")
		}
		name := sp.Name
		if name == "" || url.PathEscape(name) != name {
			return nil, fmt.Errorf("proxy: spec name %q is not URL-safe", name)
		}
		if _, dup := m.sites[name]; dup {
			return nil, fmt.Errorf("proxy: duplicate spec name %q", name)
		}
		p, err := New(Config{
			Spec:                sp,
			Sessions:            cfg.Sessions,
			Cache:               cfg.Cache,
			ViewportWidth:       cfg.ViewportWidth,
			FetchOptions:        cfg.FetchOptions,
			PathPrefix:          "/p/" + name,
			Obs:                 reg,
			Logger:              cfg.Logger,
			FetchWorkers:        cfg.FetchWorkers,
			RasterWorkers:       cfg.RasterWorkers,
			WriteWorkers:        cfg.WriteWorkers,
			ServeStale:          cfg.ServeStale,
			StaleFor:            cfg.StaleFor,
			Admission:           cfg.Admission,
			PersistBundles:      cfg.PersistBundles,
			BundleTTL:           cfg.BundleTTL,
			Stream:              cfg.Stream,
			ATFHeight:           cfg.ATFHeight,
			SnapshotProgressive: cfg.SnapshotProgressive,
			MinimalMarkup:       cfg.MinimalMarkup,
			Demand:              cfg.Demand,
			RepairRules:         cfg.RepairRules,
			ParityCheck:         cfg.ParityCheck,
			ParityMinScore:      cfg.ParityMinScore,
			Cluster:             cfg.Cluster,
		})
		if err != nil {
			return nil, fmt.Errorf("proxy: site %q: %w", name, err)
		}
		m.sites[name] = p
		m.names = append(m.names, name)
	}
	sort.Strings(m.names)
	return m, nil
}

// Obs exposes the registry shared by every mounted site.
func (m *MultiProxy) Obs() *obs.Registry { return m.obs }

// Site returns the proxy mounted for name.
func (m *MultiProxy) Site(name string) (*Proxy, bool) {
	p, ok := m.sites[name]
	return p, ok
}

// Names lists the mounted sites, sorted.
func (m *MultiProxy) Names() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// ServeHTTP implements http.Handler: /p/<name>/... routes to that
// site's proxy; / serves the site directory.
func (m *MultiProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/" {
		m.serveIndex(w)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/p/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	name, _, _ := strings.Cut(rest, "/")
	site, ok := m.sites[name]
	if !ok {
		http.NotFound(w, r)
		return
	}
	site.ServeHTTP(w, r)
}

func (m *MultiProxy) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>m.Site</title>
<meta name="viewport" content="width=device-width, initial-scale=1"></head>
<body><h3>Adapted pages</h3><ul>`)
	for _, name := range m.names {
		origin := m.sites[name].cfg.Spec.Origin
		fmt.Fprintf(w, `<li><a href="/p/%s/">%s</a> <span>(%s)</span></li>`,
			name, name, origin)
	}
	fmt.Fprint(w, `</ul></body></html>`)
}
