package proxy

import (
	"image"
	"net/url"
	"strings"

	"msite/internal/attr"
	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/layout"
)

// tidyDoc parses filtered source into a normalized document.
func tidyDoc(src string) *dom.Node {
	return html.Tidy(src)
}

// layoutForDoc lays out a document at the proxy's render width.
func layoutForDoc(doc *dom.Node, width int) *layout.Result {
	styler := css.StylerForDocument(doc)
	return layout.Layout(doc, styler, layout.Viewport{Width: width})
}

// pageHTML serializes the adapted main document.
func pageHTML(result *attr.Result) []byte {
	return []byte(html.Render(result.Doc))
}

// maxRenderImages bounds per-page image downloads.
const maxRenderImages = 48

// fetchImages downloads and decodes the images a render of doc needs,
// keyed by the src attribute value as written (the key the rasterizer
// looks up). Undecodable or unfetchable images are skipped — the
// renderer falls back to placeholders.
func fetchImages(f *fetch.Fetcher, doc *dom.Node, base string) map[string]image.Image {
	baseURL, err := url.Parse(base)
	if err != nil {
		return nil
	}
	images := make(map[string]image.Image)
	count := 0
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode || n.Tag != "img" || count >= maxRenderImages {
			return true
		}
		src := n.AttrOr("src", "")
		if src == "" || strings.HasPrefix(src, "data:") {
			return true
		}
		if _, done := images[src]; done {
			return true
		}
		abs, err := baseURL.Parse(src)
		if err != nil {
			return true
		}
		count++
		page, err := f.Get(abs.String())
		if err != nil {
			return true
		}
		decoded, err := imaging.Decode(page.Body)
		if err != nil {
			return true
		}
		// Key by the attribute as written and by its absolute form: the
		// URL-anchoring pass rewrites srcs to absolute before the
		// snapshot render looks them up.
		images[src] = decoded
		images[abs.String()] = decoded
		return true
	})
	return images
}
