package proxy

import (
	"context"
	"image"
	"net/url"
	"strings"

	"msite/internal/attr"
	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/imaging"
	"msite/internal/layout"
)

// tidyDoc parses filtered source into a normalized document.
func tidyDoc(src string) *dom.Node {
	return html.Tidy(src)
}

// layoutForDoc lays out a document at the proxy's render width.
func layoutForDoc(doc *dom.Node, width int) *layout.Result {
	styler := css.StylerForDocument(doc)
	return layout.Layout(doc, styler, layout.Viewport{Width: width})
}

// pageHTML serializes the adapted main document.
func pageHTML(result *attr.Result) []byte {
	return []byte(html.Render(result.Doc))
}

// maxRenderImages bounds per-page image downloads.
const maxRenderImages = 48

// fetchImages downloads and decodes the images a render of doc needs,
// keyed by the src attribute value as written (the key the rasterizer
// looks up). Discovery walks the DOM once, the downloads run through
// the fetcher's bounded worker pool (aborting when ctx ends), and
// decoding (plus the map build) stays serial. Undecodable or
// unfetchable images are skipped — the renderer falls back to
// placeholders.
func fetchImages(ctx context.Context, f *fetch.Fetcher, doc *dom.Node, base string) map[string]image.Image {
	baseURL, err := url.Parse(base)
	if err != nil {
		return nil
	}
	var srcs, absURLs []string
	seen := make(map[string]bool)
	doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode || n.Tag != "img" || len(srcs) >= maxRenderImages {
			return true
		}
		src := n.AttrOr("src", "")
		if src == "" || strings.HasPrefix(src, "data:") || seen[src] {
			return true
		}
		abs, err := baseURL.Parse(src)
		if err != nil {
			return true
		}
		seen[src] = true
		srcs = append(srcs, src)
		absURLs = append(absURLs, abs.String())
		return true
	})
	images := make(map[string]image.Image)
	for i, res := range f.FetchAllContext(ctx, absURLs, 0) {
		if res.Err != nil {
			continue
		}
		decoded, err := imaging.Decode(res.Page.Body)
		if err != nil {
			continue
		}
		// Key by the attribute as written and by its absolute form: the
		// URL-anchoring pass rewrites srcs to absolute before the
		// snapshot render looks them up.
		images[srcs[i]] = decoded
		images[absURLs[i]] = decoded
	}
	return images
}
