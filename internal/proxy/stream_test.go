package proxy

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"msite/internal/attr"
	"msite/internal/cache"
	"msite/internal/origin"
	"msite/internal/session"
)

// streamRig wires a proxy with custom streaming config over an origin
// whose handler can be wrapped (to inject gates or latency).
type streamRig struct {
	origin *httptest.Server
	proxy  *httptest.Server
	p      *Proxy
	cache  cache.Layer
	client *http.Client
}

func newStreamRig(t *testing.T, cfg Config, wrap func(http.Handler) http.Handler) *streamRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	h := http.Handler(forum.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	originSrv := httptest.NewServer(h)
	t.Cleanup(originSrv.Close)

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spec = forumSpec(originSrv.URL)
	cfg.Sessions = sessions
	if cfg.Cache == nil {
		cfg.Cache = cache.New()
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &streamRig{
		origin: originSrv,
		proxy:  proxySrv,
		p:      p,
		cache:  cfg.Cache,
		client: &http.Client{Jar: jar, Timeout: 30 * time.Second},
	}
}

// readUntil reads body until the accumulated bytes contain marker,
// failing on EOF or after an overall deadline.
func readUntil(t *testing.T, body io.Reader, marker string) []byte {
	t.Helper()
	var got []byte
	buf := make([]byte, 2048)
	deadline := time.Now().Add(20 * time.Second)
	for !bytes.Contains(got, []byte(marker)) {
		if time.Now().After(deadline) {
			t.Fatalf("marker %q not seen; got so far: %s", marker, got)
		}
		n, err := body.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			t.Fatalf("stream ended before %q: %v\ngot: %s", marker, err, got)
		}
	}
	return got
}

// TestStreamEntryHeadFlushedBeforeOrigin is the flush-early regression
// test: the overlay head must reach the client while the origin — and
// therefore the whole adaptation and raster pipeline behind it — is
// still blocked.
func TestStreamEntryHeadFlushedBeforeOrigin(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce bool
	rig := newStreamRig(t, Config{Stream: true}, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-gate
			h.ServeHTTP(w, r)
		})
	})
	defer func() {
		if !gateOnce {
			close(gate)
		}
	}()

	resp, err := rig.client.Get(rig.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The head — through the map's opening tag — must arrive while the
	// origin is still gated and no raster work has happened.
	head := readUntil(t, resp.Body, `<map name="msite-map">`)
	if got := rig.p.Stats().SnapshotRenders; got != 0 {
		t.Fatalf("snapshot rendered (%d) before the origin was even reachable", got)
	}
	if !strings.Contains(string(head), "msite-snap") {
		t.Fatalf("head missing snapshot img: %s", head)
	}

	// Unblock the origin; the rest of the document must complete, ATF
	// marker included.
	gateOnce = true
	close(gate)
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(head) + string(rest)
	if !strings.Contains(page, attr.ATFMarker) {
		t.Fatal("streamed page missing ATF marker")
	}
	if !strings.HasSuffix(strings.TrimSpace(page), "</html>") {
		t.Fatalf("streamed page not closed: ...%s", page[len(page)-60:])
	}
	if !strings.Contains(page, "<area") {
		t.Fatal("streamed page has no image-map areas")
	}
}

// TestStreamTTFBWellBeforeTotal asserts the server-side TTFB histogram
// exists and that the client's first byte arrives well before the
// buffered pipeline could have finished (the origin is slowed).
func TestStreamTTFBWellBeforeTotal(t *testing.T) {
	const delay = 150 * time.Millisecond
	rig := newStreamRig(t, Config{Stream: true}, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			h.ServeHTTP(w, r)
		})
	})
	start := time.Now()
	resp, err := rig.client.Get(rig.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	one := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, one); err != nil {
		t.Fatal(err)
	}
	ttfb := time.Since(start)
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ttfb >= delay {
		t.Fatalf("TTFB %v did not beat the origin delay %v — head not flushed early", ttfb, delay)
	}

	var found bool
	for _, h := range rig.p.obs.Snapshot().Histograms {
		if h.Name == "msite_proxy_ttfb_seconds" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("msite_proxy_ttfb_seconds histogram not recorded")
	}
}

// TestStreamSnapshotByteIdenticalToBuffered is the cross-mode identity
// property at the proxy level: the streaming (progressive) proxy's
// full-fidelity snapshot must be byte-identical to the buffered
// proxy's for the same origin content.
func TestStreamSnapshotByteIdenticalToBuffered(t *testing.T) {
	buffered := newStreamRig(t, Config{}, nil)
	streaming := newStreamRig(t, Config{Stream: true, SnapshotProgressive: true}, nil)

	fetchSnap := func(rig *streamRig) (string, []byte) {
		t.Helper()
		resp, err := rig.client.Get(rig.proxy.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		page, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		resp, err = rig.client.Get(rig.proxy.URL + "/asset/snapshot.jpg")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot asset status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(page), data
	}

	bufPage, bufSnap := fetchSnap(buffered)
	streamPage, streamSnap := fetchSnap(streaming)
	if len(bufSnap) == 0 {
		t.Fatal("buffered snapshot empty")
	}
	if !bytes.Equal(bufSnap, streamSnap) {
		t.Fatalf("snapshots differ: buffered %d bytes, streamed %d bytes",
			len(bufSnap), len(streamSnap))
	}

	// The streamed entry serves the coarse rung first and upgrades to a
	// versioned full URL; the buffered entry references the full asset
	// directly.
	if !strings.Contains(streamPage, "snapshot-coarse.jpg") {
		t.Fatal("streamed entry does not reference the coarse snapshot")
	}
	if !strings.Contains(streamPage, "/asset/snapshot.jpg?v=") {
		t.Fatal("streamed entry has no versioned upgrade URL")
	}
	if strings.Contains(bufPage, "snapshot-coarse") {
		t.Fatal("buffered entry should not reference the coarse rung")
	}

	// The coarse rung is a decodable JPEG, much smaller than the full
	// artifact.
	resp, err := streaming.client.Get(streaming.proxy.URL + "/asset/snapshot-coarse.jpg")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coarse asset status %d", resp.StatusCode)
	}
	coarse, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) < 2 || coarse[0] != 0xFF || coarse[1] != 0xD8 {
		t.Fatal("coarse rung is not a JPEG")
	}
	if len(coarse) >= len(streamSnap) {
		t.Fatalf("coarse rung (%d bytes) not smaller than full (%d bytes)",
			len(coarse), len(streamSnap))
	}
}

// TestStreamClientCrashPersistsNoPartialBundle: a client disconnecting
// mid-stream (after the head, before adaptation completed) must not
// leave a partial bundle in the durable tier.
func TestStreamClientCrashPersistsNoPartialBundle(t *testing.T) {
	gate := make(chan struct{})
	rig := newStreamRig(t, Config{Stream: true, PersistBundles: true}, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-gate:
			case <-r.Context().Done():
				return
			}
			h.ServeHTTP(w, r)
		})
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rig.proxy.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rig.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Head arrives while the origin is gated; then the client "crashes".
	readUntil(t, resp.Body, `<map name="msite-map">`)
	cancel()
	_ = resp.Body.Close()
	close(gate)

	// Give the aborted handler time to unwind, then assert nothing was
	// persisted for this site's bundle key.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := rig.cache.Get(rig.p.bundleKey); ok {
			t.Fatal("partial bundle persisted after client crash")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := rig.p.Stats().Adaptations; got != 0 {
		t.Fatalf("adaptation completed (%d) despite cancelled request", got)
	}

	// Control: a surviving client does persist the bundle — proving the
	// key probe above watches the right key.
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp2, err := client.Get(rig.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp2.Body); err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if _, ok := rig.cache.Get(rig.p.bundleKey); !ok {
		t.Fatal("successful request did not persist a bundle — probe key wrong?")
	}
}

func TestMinimalMarkupEntry(t *testing.T) {
	rig := newStreamRig(t, Config{Stream: true, MinimalMarkup: true}, nil)
	resp, err := rig.client.Get(rig.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, page)
	}
	for _, banned := range []string{"<img", "<script", "usemap", "<map"} {
		if strings.Contains(page, banned) {
			t.Errorf("minimal entry contains %q", banned)
		}
	}
	if !strings.Contains(page, "<a href=") {
		t.Fatal("minimal entry lost its links")
	}
	// Minimal mode does no snapshot work at all.
	if got := rig.p.Stats().SnapshotRenders; got != 0 {
		t.Fatalf("minimal mode rendered %d snapshots", got)
	}

	var found bool
	for _, h := range rig.p.obs.Snapshot().Histograms {
		if h.Name == "msite_proxy_atf_seconds" && h.Label("mode") == "minimal" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("minimal mode did not record msite_proxy_atf_seconds")
	}
}

// TestSpecMinimalMarkupSelectsMode: the MAML-style mode is selectable
// per spec, not only by the global flag.
func TestSpecMinimalMarkupSelectsMode(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)
	sp := forumSpec(originSrv.URL)
	sp.MinimalMarkup = true
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "usemap") {
		t.Fatal("spec-level minimal markup ignored: overlay served")
	}
	if !strings.Contains(string(body), "<a href=") {
		t.Fatal("minimal page lost its links")
	}
}

// TestStatusRecorderPreservesFlusher: the recorder must forward Flush
// and stamp TTFB at the first visible byte.
func TestStatusRecorderPreservesFlusher(t *testing.T) {
	base := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: base, status: http.StatusOK}
	if _, ok := interface{}(rec).(http.Flusher); !ok {
		t.Fatal("statusRecorder does not implement http.Flusher")
	}
	if !rec.firstByte.IsZero() {
		t.Fatal("firstByte stamped before any write")
	}
	rec.Flush()
	if !base.Flushed {
		t.Fatal("Flush not forwarded to the underlying writer")
	}
	if rec.firstByte.IsZero() {
		t.Fatal("Flush did not stamp TTFB")
	}
	mark := rec.firstByte
	time.Sleep(time.Millisecond)
	_, _ = rec.Write([]byte("x"))
	if rec.firstByte != mark {
		t.Fatal("later writes moved the TTFB mark")
	}
}
