package proxy

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"msite/internal/cache"
	"msite/internal/html"
	"msite/internal/jq"
	"msite/internal/origin"
	"msite/internal/session"
	"msite/internal/spec"
)

// forumSpec is the §4.3 deployment: cached low-fidelity snapshot entry
// page, login subpage with dependencies, nav links restructured and
// loaded via AJAX, banner replaced with a mobile ad.
func forumSpec(originURL string) *spec.Spec {
	return &spec.Spec{
		Name:          "sawdust",
		Origin:        originURL + "/",
		ViewportWidth: 1024,
		Snapshot: spec.SnapshotSpec{
			Enabled: true, Fidelity: "low", Scale: 0.45,
			CacheTTLSeconds: 3600, Shared: true,
		},
		Objects: []spec.Object{
			{
				Name:     "login",
				Selector: "#loginform",
				Attributes: []spec.Attribute{
					{Type: spec.AttrSubpage, Params: map[string]string{"title": "Log in"}},
				},
			},
			{
				Name:     "logo",
				Selector: "#logo",
				Attributes: []spec.Attribute{
					{Type: spec.AttrCopyTo, Params: map[string]string{
						"subpage": "login", "position": "top",
						"set-attr": "src", "set-value": "/m/logo.gif",
					}},
				},
			},
			{
				Name:     "styles",
				Selector: "head style",
				Attributes: []spec.Attribute{
					{Type: spec.AttrDependency, Params: map[string]string{"subpage": "login"}},
				},
			},
			{
				Name:     "nav",
				Selector: "#navlinks",
				Attributes: []spec.Attribute{
					{Type: spec.AttrRewriteLinks, Params: map[string]string{"columns": "2"}},
					{Type: spec.AttrSubpage, Params: map[string]string{"title": "Navigation", "ajax": "true"}},
				},
			},
			{
				Name:     "banner",
				Selector: "#banner",
				Attributes: []spec.Attribute{
					{Type: spec.AttrReplace, Params: map[string]string{
						"html": `<img src="/ads/mobile.gif" width="300" height="50" alt="ad">`}},
				},
			},
			{
				Name:     "forums",
				Selector: "#forums",
				Attributes: []spec.Attribute{
					{Type: spec.AttrSubpage, Params: map[string]string{
						"title": "Forums", "prerender": "true", "fidelity": "low"}},
					{Type: spec.AttrCacheable, Params: map[string]string{"ttl_seconds": "3600"}},
				},
			},
		},
		Actions: []spec.Action{
			{ID: 1, Match: `do=showpic&id=(\d+)`,
				Target: originURL + "/site.php?do=showpic&id=$1", Extract: "#pic"},
		},
	}
}

// testRig wires origin + proxy with one browser-like client (cookie jar).
type testRig struct {
	origin *httptest.Server
	proxy  *httptest.Server
	p      *Proxy
	client *http.Client
}

func newRig(t *testing.T, mutate func(*spec.Spec)) *testRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	sp := forumSpec(originSrv.URL)
	if mutate != nil {
		mutate(sp)
	}
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)

	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{
		origin: originSrv,
		proxy:  proxySrv,
		p:      p,
		client: &http.Client{Jar: jar, Timeout: 30 * time.Second},
	}
}

func (rig *testRig) get(t *testing.T, path string) (string, *http.Response) {
	t.Helper()
	resp, err := rig.client.Get(rig.proxy.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestNewValidation(t *testing.T) {
	sessions, _ := session.NewManager(t.TempDir())
	if _, err := New(Config{Sessions: sessions, Cache: cache.New()}); err == nil {
		t.Fatal("nil spec accepted")
	}
	sp := &spec.Spec{Name: "x", Origin: "http://o/"}
	if _, err := New(Config{Spec: sp, Cache: cache.New()}); err == nil {
		t.Fatal("nil sessions accepted")
	}
	if _, err := New(Config{Spec: sp, Sessions: sessions}); err == nil {
		t.Fatal("nil cache accepted")
	}
	if _, err := New(Config{Spec: &spec.Spec{}, Sessions: sessions, Cache: cache.New()}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestEntryPageOverlay(t *testing.T) {
	rig := newRig(t, nil)
	body, resp := rig.get(t, "/")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	doc := html.Tidy(body)
	// Session cookie issued.
	u, _ := url.Parse(rig.proxy.URL)
	found := false
	for _, c := range rig.client.Jar.Cookies(u) {
		if c.Name == session.CookieName {
			found = true
		}
	}
	if !found {
		t.Fatal("no session cookie issued")
	}
	// Snapshot image map with regions for subpages.
	img := jq.Select(doc, "img[usemap]")
	if img.Len() != 1 {
		t.Fatalf("snapshot img = %d", img.Len())
	}
	src := img.AttrOr("src", "")
	if !strings.HasPrefix(src, "/asset/snapshot") {
		t.Fatalf("snapshot src = %q", src)
	}
	areas := jq.Select(doc, "map area")
	if areas.Len() < 2 {
		t.Fatalf("areas = %d", areas.Len())
	}
	// The nav subpage loads via AJAX into the pane.
	if !strings.Contains(body, "msiteLoad('/subpage/nav')") {
		t.Fatal("ajax area missing")
	}
	if doc.ElementByID("msite-pane") == nil {
		t.Fatal("pane missing")
	}
}

func TestSnapshotAssetServed(t *testing.T) {
	rig := newRig(t, nil)
	body, _ := rig.get(t, "/")
	doc := html.Tidy(body)
	src := jq.Select(doc, "img[usemap]").AttrOr("src", "")
	data, resp := rig.get(t, src)
	if resp.StatusCode != 200 {
		t.Fatalf("asset status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "image/jpeg" {
		t.Fatalf("content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(data, "\xff\xd8") {
		t.Fatal("not a JPEG")
	}
	// Low fidelity keeps it in the paper's 25-50 KB band (scaled down);
	// generous upper bound.
	if len(data) < 2_000 || len(data) > 120_000 {
		t.Fatalf("snapshot = %d bytes", len(data))
	}
}

func TestSnapshotSharedAcrossSessions(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	renders := rig.p.Stats().SnapshotRenders

	// Second, separate client (new jar) — the snapshot must come from
	// the shared cache, amortizing the render (§3.3 Object caching).
	jar, _ := cookiejar.New(nil)
	client2 := &http.Client{Jar: jar}
	resp, err := client2.Get(rig.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()

	stats := rig.p.Stats()
	if stats.SnapshotRenders != renders {
		t.Fatalf("snapshot re-rendered: %d → %d", renders, stats.SnapshotRenders)
	}
	if stats.SnapshotHits == 0 {
		t.Fatal("no snapshot cache hit recorded")
	}
}

func TestLoginSubpage(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/") // establish session + adaptation
	body, resp := rig.get(t, "/subpage/login")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, `id="loginform"`) {
		t.Fatal("login form missing")
	}
	if !strings.Contains(body, "/m/logo.gif") {
		t.Fatal("mobile logo missing")
	}
	if !strings.Contains(body, ".tcat") && !strings.Contains(body, "style") {
		t.Fatal("style dependency missing")
	}
}

func TestSubpageWithoutPriorEntry(t *testing.T) {
	// Hitting a subpage first still adapts on demand.
	rig := newRig(t, nil)
	body, resp := rig.get(t, "/subpage/login")
	if resp.StatusCode != 200 || !strings.Contains(body, "loginform") {
		t.Fatalf("direct subpage failed: %d", resp.StatusCode)
	}
}

func TestUnknownSubpage404(t *testing.T) {
	rig := newRig(t, nil)
	_, resp := rig.get(t, "/subpage/ghost")
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPreRenderedSubpageAsset(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	body, _ := rig.get(t, "/subpage/forums")
	if !strings.Contains(body, `src="/asset/forums.jpg"`) {
		t.Fatalf("prerendered subpage should reference asset: %s", body)
	}
	data, resp := rig.get(t, "/asset/forums.jpg")
	if resp.StatusCode != 200 || !strings.HasPrefix(data, "\xff\xd8") {
		t.Fatal("asset not served")
	}
}

func TestAssetTraversalBlocked(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	for _, path := range []string{"/asset/..%2F..%2Fetc", "/asset/a%2Fb"} {
		_, resp := rig.get(t, path)
		if resp.StatusCode != 404 {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
}

func TestAJAXDispatch(t *testing.T) {
	rig := newRig(t, nil)
	body, resp := rig.get(t, "/ajax?action=1&p=42")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "photo_42") {
		t.Fatalf("fragment = %s", body)
	}
	if strings.Contains(body, "chrome") {
		t.Fatal("extraction leaked surrounding chrome")
	}
	_, resp = rig.get(t, "/ajax?action=99&p=1")
	if resp.StatusCode != 502 {
		t.Fatalf("unknown action = %d", resp.StatusCode)
	}
	_, resp = rig.get(t, "/ajax?action=abc")
	if resp.StatusCode != 400 {
		t.Fatalf("bad action = %d", resp.StatusCode)
	}
}

func TestLogoutClearsCookies(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	_, resp := rig.get(t, "/logout")
	// Redirect followed back to entry.
	if resp.Request.URL.Path != "/" {
		t.Fatalf("final path = %s", resp.Request.URL.Path)
	}
}

func TestSnapshotDisabledServesAdaptedMain(t *testing.T) {
	rig := newRig(t, func(s *spec.Spec) { s.Snapshot.Enabled = false })
	body, resp := rig.get(t, "/")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The adapted main: banner replaced, login form split away.
	if !strings.Contains(body, "/ads/mobile.gif") {
		t.Fatal("banner not replaced")
	}
	if strings.Contains(body, `id="loginform"`) {
		t.Fatal("split object still in main page")
	}
	if strings.Contains(body, "usemap") {
		t.Fatal("unexpected overlay")
	}
}

func TestFilterPhaseApplied(t *testing.T) {
	rig := newRig(t, func(s *spec.Spec) {
		s.Snapshot.Enabled = false
		s.Filters = []spec.Filter{
			{Type: "title", Params: map[string]string{"value": "m.Sawdust"}},
			{Type: "strip-scripts"},
		}
	})
	body, _ := rig.get(t, "/")
	if !strings.Contains(body, "<title>m.Sawdust</title>") {
		t.Fatal("title filter not applied")
	}
	if strings.Contains(body, "js_0.js") {
		t.Fatal("scripts not stripped")
	}
}

func TestOriginDownError(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	sp := forumSpec(originSrv.URL)
	originSrv.Close() // origin is down

	sessions, _ := session.NewManager(t.TempDir())
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()

	resp, err := http.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAuthInterposition(t *testing.T) {
	// An origin protected by HTTP basic auth: the proxy redirects to its
	// lightweight auth page, stores credentials, and replays them.
	protected := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		user, pass, ok := r.BasicAuth()
		if !ok || user != "member" || pass != "pw" {
			w.Header().Set("WWW-Authenticate", `Basic realm="forum"`)
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		_, _ = w.Write([]byte(`<html><body><div id="private">secret page</div></body></html>`))
	}))
	defer protected.Close()

	sp := &spec.Spec{Name: "private", Origin: protected.URL + "/"}
	sessions, _ := session.NewManager(t.TempDir())
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}

	// First hit: redirected to /auth.
	resp, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.Request.URL.Path != "/auth" {
		t.Fatalf("not redirected to auth: %s", resp.Request.URL)
	}
	if !strings.Contains(string(body), "Authentication required") {
		t.Fatal("auth page missing")
	}

	// Submit credentials; follow redirect back to the page.
	resp2, err := client.PostForm(resp.Request.URL.String(), url.Values{
		"username": {"member"}, "password": {"pw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("post-auth status = %d", resp2.StatusCode)
	}
	if !strings.Contains(string(body2), "secret page") {
		t.Fatalf("authed content not proxied: %s", body2)
	}
}

func TestStatsCounters(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	rig.get(t, "/subpage/login")
	s := rig.p.Stats()
	if s.Requests < 2 {
		t.Fatalf("requests = %d", s.Requests)
	}
	if s.Adaptations != 1 {
		t.Fatalf("adaptations = %d", s.Adaptations)
	}
	if s.SnapshotRenders != 1 {
		t.Fatalf("renders = %d", s.SnapshotRenders)
	}
}

func TestRefreshReAdapts(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	rig.get(t, "/?refresh=1")
	if got := rig.p.Stats().Adaptations; got != 2 {
		t.Fatalf("adaptations = %d", got)
	}
}

func TestServeStaleOnOriginFailure(t *testing.T) {
	// With ServeStale on, a session that was adapted once keeps being
	// served (from its previous adaptation) after the origin goes down.
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	sp := forumSpec(originSrv.URL)

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New()
	defer c.Close()
	p, err := New(Config{
		Spec: sp, Sessions: sessions, Cache: c,
		ServeStale: true, StaleFor: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	warm, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, warm.Body)
	_ = warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d", warm.StatusCode)
	}

	originSrv.Close() // origin goes dark

	resp, err := client.Get(proxySrv.URL + "/?refresh=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale status = %d: %.200s", resp.StatusCode, body)
	}
	if cnt, ok := p.Obs().Snapshot().Counter("msite_proxy_stale_served_total",
		"site", sp.Name); !ok || cnt.Value < 1 {
		t.Fatalf("stale counter = %+v ok=%v", cnt, ok)
	}

	// A brand-new session has nothing to fall back on: still 502.
	fresh, err := http.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, fresh.Body)
	_ = fresh.Body.Close()
	if fresh.StatusCode != http.StatusBadGateway {
		t.Fatalf("cold status = %d", fresh.StatusCode)
	}
}
