package proxy

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"msite/internal/cache"
	"msite/internal/obs"
	"msite/internal/origin"
	"msite/internal/session"
)

// obsRig is newRig plus a shared registry and optional logger.
func obsRig(t *testing.T, reg *obs.Registry, logger *slog.Logger) *testRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sharedCache := cache.New()
	sharedCache.SetObs(reg)
	p, err := New(Config{
		Spec:     forumSpec(originSrv.URL),
		Sessions: sessions,
		Cache:    sharedCache,
		Obs:      reg,
		Logger:   logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{origin: originSrv, proxy: proxySrv, p: p, client: &http.Client{Jar: jar}}
}

func TestPipelineStagesObserved(t *testing.T) {
	reg := obs.NewRegistry()
	rig := obsRig(t, reg, nil)
	rig.get(t, "/")
	rig.get(t, "/subpage/login")

	snap := reg.Snapshot()
	// The entry request runs the full pipeline: every stage histogram
	// must have at least one observation and ordered quantiles.
	for _, stage := range []string{
		"fetch", "filter", "subres", "attr", "subpage_split",
		"layout", "raster", "encode", "adapt_total",
	} {
		h, ok := snap.Histogram(obs.StageHistogram, "stage", stage)
		if !ok || h.Count == 0 {
			t.Fatalf("stage %q not observed (ok=%v count=%d)", stage, ok, h.Count)
		}
		if h.P99 < h.P50 {
			t.Fatalf("stage %q quantiles inverted: p50=%v p99=%v", stage, h.P50, h.P99)
		}
	}

	// Per-handler request counters.
	c, ok := snap.Counter("msite_proxy_requests_total", "handler", "entry", "site", "sawdust")
	if !ok || c.Value != 1 {
		t.Fatalf("entry counter = %+v ok=%v", c, ok)
	}
	c, ok = snap.Counter("msite_proxy_requests_total", "handler", "subpage", "site", "sawdust")
	if !ok || c.Value != 1 {
		t.Fatalf("subpage counter = %+v ok=%v", c, ok)
	}

	// Request latency histograms per handler.
	if h, ok := snap.Histogram("msite_http_request_seconds", "handler", "entry"); !ok || h.Count != 1 {
		t.Fatalf("request histogram = %+v ok=%v", h, ok)
	}

	// Cache metrics flow through the shared registry (snapshot fill).
	if c, ok := snap.Counter("msite_cache_fills_total"); !ok || c.Value == 0 {
		t.Fatalf("cache fills = %+v ok=%v", c, ok)
	}

	// Live-session gauge registered by the proxy.
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "msite_sessions_live" && g.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("live session gauge missing: %+v", snap.Gauges)
	}
}

func TestTracesRecordCacheOutcome(t *testing.T) {
	reg := obs.NewRegistry()
	rig := obsRig(t, reg, nil)
	rig.get(t, "/") // cold: fill
	rig.get(t, "/") // warm: shared-cache hit

	var hit, miss bool
	for _, tr := range reg.RecentTraces() {
		if tr.Name != "entry" {
			continue
		}
		switch tr.Attrs["cache"] {
		case "hit":
			hit = true
		case "miss":
			miss = true
		}
		if tr.Attrs["session"] == "" {
			t.Fatalf("trace missing session annotation: %+v", tr.Attrs)
		}
	}
	if !hit || !miss {
		t.Fatalf("cache outcomes hit=%v miss=%v", hit, miss)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	reg := obs.NewRegistry()
	rig := obsRig(t, reg, logger)
	rig.get(t, "/")

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		"msg=request", "handler=entry", "site=sawdust", "status=200",
		"session=", "duration=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log line missing %q:\n%s", want, out)
		}
	}
}

// lockedWriter serializes concurrent log writes in tests.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestConcurrentServingAndScrapes drives parallel clients through the
// full adaptation pipeline while scraping the registry — the integration
// end of the concurrent metric writes + scrapes acceptance criterion
// (run under -race in CI).
func TestConcurrentServingAndScrapes(t *testing.T) {
	reg := obs.NewRegistry()
	rig := obsRig(t, reg, nil)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jar, _ := cookiejar.New(nil)
			client := &http.Client{Jar: jar}
			for _, path := range []string{"/", "/subpage/login", "/stats", "/"} {
				resp, err := client.Get(rig.proxy.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = reg.Snapshot()
			_ = reg.RecentTraces()
		}
	}()
	wg.Wait()
	<-done

	snap := reg.Snapshot()
	c, ok := snap.Counter("msite_proxy_requests_total", "handler", "entry", "site", "sawdust")
	if !ok || c.Value != 8 {
		t.Fatalf("entry requests = %+v ok=%v, want 8", c, ok)
	}
	if rig.p.Stats().Requests != 16 {
		t.Fatalf("total requests = %d, want 16", rig.p.Stats().Requests)
	}
}
