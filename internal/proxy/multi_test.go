package proxy

import (
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"msite/internal/cache"
	"msite/internal/origin"
	"msite/internal/session"
	"msite/internal/spec"
)

func multiRig(t *testing.T) *testRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	forumSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(forumSrv.Close)
	classifieds := origin.NewClassifieds(origin.DefaultClassifiedsConfig())
	classSrv := httptest.NewServer(classifieds.Handler())
	t.Cleanup(classSrv.Close)

	entrySpec := forumSpec(forumSrv.URL)
	entrySpec.Name = "forum"

	threadSpec := &spec.Spec{
		Name:   "classifieds",
		Origin: classSrv.URL + "/search/tools",
		Objects: []spec.Object{
			{Name: "listings", Selector: "#listings", Attributes: []spec.Attribute{
				{Type: spec.AttrAJAXify},
			}},
		},
		Actions: []spec.Action{
			{ID: 1, Match: `/post/(\w+)\.html`,
				Target: classSrv.URL + "/post/$1.html", Extract: "#postingbody"},
		},
	}

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti(MultiConfig{
		Specs:    []*spec.Spec{entrySpec, threadSpec},
		Sessions: sessions,
		Cache:    cache.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	return &testRig{proxy: srv, client: &http.Client{Jar: jar}}
}

func TestMultiIndex(t *testing.T) {
	rig := multiRig(t)
	body, resp := rig.get(t, "/")
	if resp.StatusCode != 200 {
		t.Fatalf("index = %d", resp.StatusCode)
	}
	if !strings.Contains(body, `href="/p/forum/"`) || !strings.Contains(body, `href="/p/classifieds/"`) {
		t.Fatalf("index missing sites: %s", body)
	}
}

func TestMultiSitePrefixedURLs(t *testing.T) {
	rig := multiRig(t)
	body, resp := rig.get(t, "/p/forum/")
	if resp.StatusCode != 200 {
		t.Fatalf("forum entry = %d: %s", resp.StatusCode, body)
	}
	// Every generated URL carries the site prefix.
	if !strings.Contains(body, `/p/forum/asset/snapshot`) {
		t.Fatalf("snapshot URL unprefixed: %s", body)
	}
	if !strings.Contains(body, `/p/forum/subpage/login`) {
		t.Fatal("subpage URLs unprefixed")
	}

	sub, resp := rig.get(t, "/p/forum/subpage/forums")
	if resp.StatusCode != 200 {
		t.Fatalf("subpage = %d", resp.StatusCode)
	}
	if !strings.Contains(sub, `/p/forum/asset/forums.jpg`) {
		t.Fatalf("prerender asset unprefixed: %s", sub)
	}
	if _, resp := rig.get(t, "/p/forum/asset/forums.jpg"); resp.StatusCode != 200 {
		t.Fatal("prefixed asset not served")
	}
}

func TestMultiSecondSiteAJAX(t *testing.T) {
	rig := multiRig(t)
	body, resp := rig.get(t, "/p/classifieds/")
	if resp.StatusCode != 200 {
		t.Fatalf("classifieds = %d", resp.StatusCode)
	}
	// Rewritten calls target the site-prefixed ajax endpoint.
	if !strings.Contains(body, "/p/classifieds/ajax?action=1") {
		t.Fatalf("ajax endpoint unprefixed: %.300s", body)
	}
	frag, resp := rig.get(t, "/p/classifieds/ajax?action=1&p=t0003")
	if resp.StatusCode != 200 || !strings.Contains(frag, "postingbody") {
		t.Fatalf("ajax dispatch = %d: %s", resp.StatusCode, frag)
	}
}

func TestMultiSharedSession(t *testing.T) {
	rig := multiRig(t)
	rig.get(t, "/p/forum/")
	rig.get(t, "/p/classifieds/")
	// One cookie, one session across both sites.
	u, err := url.Parse(rig.proxy.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rig.client.Jar.Cookies(u)); got != 1 {
		t.Fatalf("cookies = %d, want 1 shared session", got)
	}
}

func TestMultiUnknownSite404(t *testing.T) {
	rig := multiRig(t)
	for _, path := range []string{"/p/ghost/", "/nope", "/p/"} {
		_, resp := rig.get(t, path)
		if resp.StatusCode != 404 {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
}

func TestNewMultiValidation(t *testing.T) {
	sessions, _ := session.NewManager(t.TempDir())
	base := &spec.Spec{Name: "a", Origin: "http://o/"}
	if _, err := NewMulti(MultiConfig{Sessions: sessions, Cache: cache.New()}); err == nil {
		t.Fatal("empty specs accepted")
	}
	dup := &spec.Spec{Name: "a", Origin: "http://o2/"}
	if _, err := NewMulti(MultiConfig{Specs: []*spec.Spec{base, dup}, Sessions: sessions, Cache: cache.New()}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	bad := &spec.Spec{Name: "a/b", Origin: "http://o/"}
	if _, err := NewMulti(MultiConfig{Specs: []*spec.Spec{bad}, Sessions: sessions, Cache: cache.New()}); err == nil {
		t.Fatal("unsafe name accepted")
	}
	m, err := NewMulti(MultiConfig{Specs: []*spec.Spec{base}, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Site("a"); !ok {
		t.Fatal("site lookup failed")
	}
	if len(m.Names()) != 1 {
		t.Fatal("names wrong")
	}
}
