package proxy

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msite/internal/admission"
	"msite/internal/cache"
	"msite/internal/obs"
	"msite/internal/origin"
	"msite/internal/session"
)

// gatedRig is a proxy over a forum origin whose page requests can be
// held open: requests to "/" block until the gate is released, so a test
// can pile up concurrent cold adaptations deterministically.
type gatedRig struct {
	proxy    *httptest.Server
	p        *Proxy
	rootHits atomic.Int64
	release  chan struct{}
	once     sync.Once
}

func newGatedRig(t *testing.T, adm *admission.Controller) *gatedRig {
	t.Helper()
	g := &gatedRig{release: make(chan struct{})}
	forum := origin.NewForum(origin.DefaultForumConfig()).Handler()
	originSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			g.rootHits.Add(1)
			select {
			case <-g.release:
			case <-r.Context().Done():
				return
			}
		}
		forum.ServeHTTP(w, r)
	}))
	t.Cleanup(originSrv.Close)

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Spec:      forumSpec(originSrv.URL),
		Sessions:  sessions,
		Cache:     cache.New(),
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.p = p
	g.proxy = httptest.NewServer(p)
	t.Cleanup(g.proxy.Close)
	return g
}

// open releases the origin gate (idempotent).
func (g *gatedRig) open() { g.once.Do(func() { close(g.release) }) }

// TestColdCrowdCoalescesToOneBuild is the flash-crowd invariant: N
// concurrent cold sessions of the same page run the adaptation pipeline
// exactly once. Run under -race this also stresses the shared-build
// bookkeeping.
func TestColdCrowdCoalescesToOneBuild(t *testing.T) {
	g := newGatedRig(t, nil)
	const crowd = 8

	var wg sync.WaitGroup
	errs := make(chan error, crowd)
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(g.proxy.URL + "/")
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %.80s", i, resp.StatusCode, body)
			}
		}(i)
	}

	// Every client has either started the build or joined it once the
	// waiter count reaches the crowd size; only then let the origin
	// answer. No sleeps, no timing assumptions.
	key := "adapt:" + g.p.cfg.Spec.Name
	deadline := time.Now().Add(10 * time.Second)
	for g.p.coalesce.Waiters(key) < crowd {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d clients joined the build", g.p.coalesce.Waiters(key), crowd)
		}
		time.Sleep(time.Millisecond)
	}
	g.open()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := g.p.Stats().Adaptations; got != 1 {
		t.Errorf("pipeline executions = %d, want exactly 1", got)
	}
	if got := g.rootHits.Load(); got != 1 {
		t.Errorf("origin page fetches = %d, want exactly 1", got)
	}
	snap := g.p.Obs().Snapshot()
	if got := metricSum(snap, "msite_admission_coalesced_total"); got != crowd-1 {
		t.Errorf("msite_admission_coalesced_total = %v, want %d", got, crowd-1)
	}
}

// TestClientDisconnectCancelsOriginFetch is the acceptance test for
// context threading: when the last client interested in an adaptation
// disconnects, the in-flight origin request observes its context done
// instead of running to completion.
func TestClientDisconnectCancelsOriginFetch(t *testing.T) {
	var once sync.Once
	arrived := make(chan struct{})
	aborted := make(chan struct{})
	forum := origin.NewForum(origin.DefaultForumConfig()).Handler()
	originSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			once.Do(func() { close(arrived) })
			<-r.Context().Done()
			close(aborted)
			return
		}
		forum.ServeHTTP(w, r)
	}))
	t.Cleanup(originSrv.Close)

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: forumSpec(originSrv.URL), Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, proxySrv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	<-arrived // the origin fetch is in flight
	cancel()  // the client walks away

	select {
	case <-aborted:
		// The origin saw the fetch's context end: a disconnected client
		// costs the origin nothing.
	case <-time.After(10 * time.Second):
		t.Fatal("origin fetch still running 10s after the client disconnected")
	}
	<-done
}

// TestPersonalizedSessionsBypassCoalescing: a session carrying stored
// credentials must never share another session's build (its origin view
// may differ), even when the requests are concurrent.
func TestPersonalizedSessionsBypassCoalescing(t *testing.T) {
	g := newGatedRig(t, nil)

	// Client A stores HTTP credentials, marking its session personalized.
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	authed := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := authed.PostForm(g.proxy.URL+"/auth?back=/stats", map[string][]string{
		"username": {"u"}, "password": {"p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var wg sync.WaitGroup
	for _, client := range []*http.Client{authed, {Timeout: 30 * time.Second}} {
		wg.Add(1)
		go func(c *http.Client) {
			defer wg.Done()
			resp, err := c.Get(g.proxy.URL + "/")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(client)
	}

	// Two separate origin page fetches in flight at once proves the
	// personalized session ran its own build.
	deadline := time.Now().Add(10 * time.Second)
	for g.rootHits.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("origin page fetches = %d, want 2 concurrent builds", g.rootHits.Load())
		}
		time.Sleep(time.Millisecond)
	}
	g.open()
	wg.Wait()

	if got := g.p.Stats().Adaptations; got != 2 {
		t.Errorf("pipeline executions = %d, want 2 (no sharing with personalized)", got)
	}
}

// TestQueueFullSheds503: with one pipeline slot, no queue, and the slot
// held, a second build sheds immediately with 503 + Retry-After instead
// of hanging.
func TestQueueFullSheds503(t *testing.T) {
	adm, err := admission.NewController(admission.Config{MaxConcurrent: 1, QueueLen: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedRig(t, adm)
	defer g.open()

	// The first cold client takes the only slot and blocks on the origin.
	first := make(chan struct{})
	go func() {
		defer close(first)
		resp, err := http.Get(g.proxy.URL + "/")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for adm.Limiter().Active() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first build never acquired the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// A personalized second client cannot coalesce and cannot queue.
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	authed := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	resp, err := authed.PostForm(g.proxy.URL+"/auth?back=/stats", map[string][]string{
		"username": {"u"}, "password": {"p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = authed.Get(g.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %.80s", resp.StatusCode, body)
	}
	assertRetryAfter(t, resp)
	if strings.Contains(string(body), "admission") {
		t.Errorf("shed body leaks internal detail: %q", body)
	}

	g.open()
	<-first
	snap := g.p.Obs().Snapshot()
	if got := metricSum(snap, "msite_admission_shed_total"); got < 1 {
		t.Errorf("msite_admission_shed_total = %v, want >= 1", got)
	}
}

// TestRateLimit429 covers the per-client token bucket: past the burst,
// requests get 429 + Retry-After and the reject counter moves.
func TestRateLimit429(t *testing.T) {
	adm, err := admission.NewController(admission.Config{RatePerSec: 0.01, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedRig(t, adm)
	g.open()

	// /stats is cheap and sessionless; every request comes from the same
	// remote address, i.e. the same bucket.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(g.proxy.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(g.proxy.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status past burst = %d, want 429; body %.80s", resp.StatusCode, body)
	}
	assertRetryAfter(t, resp)
	snap := g.p.Obs().Snapshot()
	if got := metricSum(snap, "msite_ratelimit_rejects_total"); got != 1 {
		t.Errorf("msite_ratelimit_rejects_total = %v, want 1", got)
	}
}

// TestSessionCapSheds503: past -max-sessions, first contacts are shed
// with 503 + Retry-After instead of allocating session state.
func TestSessionCapSheds503(t *testing.T) {
	g := newGatedRig(t, nil)
	g.open()
	g.p.cfg.Sessions.SetLimit(1)

	resp, err := http.Get(g.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first session: status %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(g.proxy.URL + "/") // cookieless: wants a second session
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status over cap = %d, want 503; body %.80s", resp.StatusCode, body)
	}
	assertRetryAfter(t, resp)
	if strings.Contains(string(body), "too many live sessions") {
		t.Errorf("cap body leaks internal detail: %q", body)
	}
	if got := g.p.cfg.Sessions.Len(); got != 1 {
		t.Errorf("sessions = %d, want 1 (no allocation past the cap)", got)
	}
	snap := g.p.Obs().Snapshot()
	if got := counterValue(snap, "msite_admission_shed_total", "reason", admission.ReasonSessionCap); got != 1 {
		t.Errorf("shed_total{reason=session_cap} = %v, want 1", got)
	}
}

// TestErrorBodiesAreGeneric: origin failure detail belongs in the log
// and trace, never in the response body.
func TestErrorBodiesAreGeneric(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: forumSpec(originSrv.URL), Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)

	originSrv.Close() // every fetch now fails with a dial error

	resp, err := http.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	got := strings.TrimSpace(string(body))
	if got != "origin unavailable" {
		t.Errorf("502 body = %q, want the generic %q", got, "origin unavailable")
	}
	for _, leak := range []string{"connection refused", "dial tcp", "127.0.0.1"} {
		if strings.Contains(string(body), leak) {
			t.Errorf("502 body leaks %q: %q", leak, body)
		}
	}
}

// TestStatusRecorderForwardsFlusher is the regression test for the
// recorder hiding http.Flusher from streaming handlers.
func TestStatusRecorderForwardsFlusher(t *testing.T) {
	rr := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: rr, status: http.StatusOK}

	var w http.ResponseWriter = rec
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not expose http.Flusher")
	}
	f.Flush()
	if !rr.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}

	// A bare writer without Flush support must not panic.
	bare := &statusRecorder{ResponseWriter: bareWriter{httptest.NewRecorder()}}
	bare.Flush()
}

// bareWriter hides the optional interfaces of its embedded recorder.
type bareWriter struct{ *httptest.ResponseRecorder }

func (b bareWriter) Header() http.Header         { return b.ResponseRecorder.Header() }
func (b bareWriter) Write(p []byte) (int, error) { return b.ResponseRecorder.Write(p) }
func (b bareWriter) WriteHeader(code int)        { b.ResponseRecorder.WriteHeader(code) }

// readerFromWriter counts ReadFrom calls to prove the fast path is used.
type readerFromWriter struct {
	*httptest.ResponseRecorder
	readFroms int
}

func (w *readerFromWriter) ReadFrom(r io.Reader) (int64, error) {
	w.readFroms++
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	n, err := w.ResponseRecorder.Write(data)
	return int64(n), err
}

func TestStatusRecorderForwardsReadFrom(t *testing.T) {
	under := &readerFromWriter{ResponseRecorder: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: under, status: http.StatusOK}
	// Hide strings.Reader's WriterTo so io.Copy probes the destination's
	// ReaderFrom instead.
	n, err := io.Copy(rec, struct{ io.Reader }{strings.NewReader("payload")})
	if err != nil || n != 7 {
		t.Fatalf("io.Copy = %d, %v", n, err)
	}
	if under.readFroms != 1 {
		t.Errorf("underlying ReadFrom calls = %d, want 1 (fast path)", under.readFroms)
	}
	if got := under.Body.String(); got != "payload" {
		t.Errorf("body = %q, want %q", got, "payload")
	}

	// Without an underlying ReaderFrom the copy still lands.
	plain := httptest.NewRecorder()
	rec = &statusRecorder{ResponseWriter: bareWriter{plain}}
	if _, err := io.Copy(rec, struct{ io.Reader }{strings.NewReader("fallback")}); err != nil {
		t.Fatal(err)
	}
	if got := plain.Body.String(); got != "fallback" {
		t.Errorf("fallback body = %q, want %q", got, "fallback")
	}
}

// assertRetryAfter checks the response carries a positive integral
// Retry-After header — a shed without a hint invites a retry storm.
func assertRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Error("missing Retry-After header")
		return
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", ra)
	}
}

// metricSum totals a counter family across label sets.
func metricSum(snap obs.Snapshot, name string) float64 {
	var total float64
	for _, c := range snap.Counters {
		if c.Name == name {
			total += float64(c.Value)
		}
	}
	return total
}

// counterValue returns one labeled counter's value.
func counterValue(snap obs.Snapshot, name, labelKey, labelVal string) float64 {
	var total float64
	for _, c := range snap.Counters {
		if c.Name != name {
			continue
		}
		for _, l := range c.Labels {
			if l.Key == labelKey && l.Value == labelVal {
				total += float64(c.Value)
			}
		}
	}
	return total
}
