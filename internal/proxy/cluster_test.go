package proxy

import (
	"context"
	"errors"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"msite/internal/cache"
	"msite/internal/origin"
	"msite/internal/session"
)

// ownerHook is a ClusterHook backed by a real owner proxy in the same
// process: FetchBundle answers with the owner's ClusterBuild product,
// the way a remote peer's transport would.
type ownerHook struct {
	owner *Proxy
	calls atomic.Int64
	err   error
}

func (h *ownerHook) FetchBundle(ctx context.Context, site, key string) ([]byte, *cache.Entry, bool, error) {
	h.calls.Add(1)
	if h.err != nil {
		return nil, nil, true, h.err
	}
	data, _, err := h.owner.ClusterBuild(ctx)
	if err != nil {
		return nil, nil, true, err
	}
	var snap *cache.Entry
	if e, ok := h.owner.ClusterSnapshot(); ok {
		snap = &e
	}
	return data, snap, true, nil
}

// newClusterPair builds an owner proxy (bundle persistence on, no hook)
// and a requester proxy whose cluster hook forwards to it; both adapt
// the same origin under the same spec, so they share a bundle key.
func newClusterPair(t *testing.T) (ownerP *Proxy, requester *Proxy, hook *ownerHook, srv *httptest.Server) {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	newP := func(c ClusterHook) *Proxy {
		sessions, err := session.NewManager(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			Spec:           forumSpec(originSrv.URL),
			Sessions:       sessions,
			Cache:          cache.New(),
			PersistBundles: true,
			Cluster:        c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ownerP = newP(nil)
	hook = &ownerHook{owner: ownerP}
	requester = newP(hook)
	srv = httptest.NewServer(requester)
	t.Cleanup(srv.Close)
	return ownerP, requester, hook, srv
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return resp, b.String()
}

// A cold request on a non-owner node must be satisfied by the owner's
// build: zero local pipeline runs, one on the owner, and the local
// cache seeded so the next cold session here doesn't re-forward.
func TestClusterColdRequestForwardsToOwner(t *testing.T) {
	ownerP, requester, hook, srv := newClusterPair(t)

	jar, _ := cookiejar.New(nil)
	resp, body := get(t, &http.Client{Jar: jar, Timeout: 30 * time.Second}, srv.URL+"/")
	if resp.StatusCode != 200 || !strings.Contains(body, "usemap") {
		t.Fatalf("entry: %d: %s", resp.StatusCode, body)
	}
	if got := hook.calls.Load(); got != 1 {
		t.Fatalf("hook calls = %d, want 1", got)
	}
	if got := requester.Stats().Adaptations; got != 0 {
		t.Fatalf("requester ran %d local pipelines, want 0", got)
	}
	if got := ownerP.Stats().Adaptations; got != 1 {
		t.Fatalf("owner ran %d pipelines, want 1", got)
	}
	// The owner's shared snapshot rode along: serving the overlay asset
	// must not cost a local render.
	if got := requester.Stats().SnapshotRenders; got != 0 {
		t.Fatalf("requester rendered %d snapshots, want 0 (peer snapshot seeded)", got)
	}

	// A second cold session hits the seeded local bundle, not the peer.
	jar2, _ := cookiejar.New(nil)
	if resp, _ := get(t, &http.Client{Jar: jar2, Timeout: 30 * time.Second}, srv.URL+"/"); resp.StatusCode != 200 {
		t.Fatal("second session entry failed")
	}
	if got := hook.calls.Load(); got != 1 {
		t.Fatalf("second cold session re-forwarded (hook calls = %d)", got)
	}
}

// When the owner fails, the requester must take over locally — the
// request succeeds with a local pipeline run, never a 5xx.
func TestClusterOwnerFailureFallsBackLocal(t *testing.T) {
	_, requester, hook, srv := newClusterPair(t)
	hook.err = errors.New("peer down")

	jar, _ := cookiejar.New(nil)
	resp, body := get(t, &http.Client{Jar: jar, Timeout: 30 * time.Second}, srv.URL+"/")
	if resp.StatusCode != 200 || !strings.Contains(body, "usemap") {
		t.Fatalf("entry: %d: %s", resp.StatusCode, body)
	}
	if got := requester.Stats().Adaptations; got != 1 {
		t.Fatalf("local takeover ran %d pipelines, want 1", got)
	}
}

// Sticky routing: a personalized (session-bearing) request must never
// consult the ring — its build stays local.
func TestClusterPersonalizedStaysLocal(t *testing.T) {
	_, requester, hook, srv := newClusterPair(t)

	sess, err := requester.cfg.Sessions.Create()
	if err != nil {
		t.Fatal(err)
	}
	sess.MarkPersonalized()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
	req.AddCookie(&http.Cookie{Name: session.CookieName, Value: sess.ID})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("personalized entry: %d", resp.StatusCode)
	}
	if got := hook.calls.Load(); got != 0 {
		t.Fatalf("personalized request consulted the ring %d times", got)
	}
	if got := requester.Stats().Adaptations; got != 1 {
		t.Fatalf("personalized build ran %d pipelines locally, want 1", got)
	}
}

// BundleKeyForSpec must agree with the key New derives — the ring
// routes by it, so a mismatch would send requesters to the wrong owner.
func TestBundleKeyForSpecMatchesProxy(t *testing.T) {
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)
	sp := forumSpec(originSrv.URL)

	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New(), PersistBundles: true})
	if err != nil {
		t.Fatal(err)
	}
	key, err := BundleKeyForSpec(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if key != p.BundleKey() {
		t.Fatalf("BundleKeyForSpec = %q, proxy key = %q", key, p.BundleKey())
	}
}
