package proxy

import (
	"image"
	"image/color"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"msite/internal/cache"
	"msite/internal/imaging"
	"msite/internal/origin"
	"msite/internal/session"
	"msite/internal/spec"
)

// loginRig wires a proxy whose spec enables origin form-login
// marshaling and an action that requires the origin login cookie.
func loginRig(t *testing.T) *testRig {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	originSrv := httptest.NewServer(forum.Handler())
	t.Cleanup(originSrv.Close)

	sp := &spec.Spec{
		Name:   "members",
		Origin: originSrv.URL + "/",
		Login:  spec.LoginSpec{URL: originSrv.URL + "/login.php"},
		Actions: []spec.Action{
			{ID: 5, Match: `private\.php`, Target: originSrv.URL + "/private.php", Extract: "#pm"},
		},
	}
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	t.Cleanup(proxySrv.Close)

	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{origin: originSrv, proxy: proxySrv, p: p,
		client: &http.Client{Jar: jar}}
}

func TestLoginFormServed(t *testing.T) {
	rig := loginRig(t)
	body, resp := rig.get(t, "/login")
	if resp.StatusCode != 200 || !strings.Contains(body, `action="/login"`) {
		t.Fatalf("login form: %d %s", resp.StatusCode, body)
	}
}

func TestLoginMarshaledToOrigin(t *testing.T) {
	rig := loginRig(t)
	// Before login: the private-area action fails (origin 403).
	_, resp := rig.get(t, "/ajax?action=5")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("pre-login action = %d", resp.StatusCode)
	}

	// Log in through the proxy (forum accepts password "sawdust").
	postResp, err := rig.client.PostForm(rig.proxy.URL+"/login", url.Values{
		"username": {"oakhand"}, "password": {"sawdust"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(postResp.Body)
	_ = postResp.Body.Close()
	if postResp.Request.URL.Path != "/" {
		t.Fatalf("post-login redirect landed at %s", postResp.Request.URL.Path)
	}

	// Now the proxy's cookie jar is authenticated on the origin, so the
	// private fragment is fetchable on the user's behalf.
	body, resp := rig.get(t, "/ajax?action=5")
	if resp.StatusCode != 200 {
		t.Fatalf("post-login action = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "oakhand") || !strings.Contains(body, "Private messages") {
		t.Fatalf("fragment = %s", body)
	}
}

func TestLoginBadCredentials(t *testing.T) {
	rig := loginRig(t)
	resp, err := rig.client.PostForm(rig.proxy.URL+"/login", url.Values{
		"username": {"oakhand"}, "password": {"wrong"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bad login = %d", resp.StatusCode)
	}
}

func TestLoginDisabledWithoutSpec(t *testing.T) {
	rig := newRig(t, nil) // forumSpec has no Login config
	_, resp := rig.get(t, "/login")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("login without config = %d", resp.StatusCode)
	}
}

func TestLoginIsolatedPerSession(t *testing.T) {
	rig := loginRig(t)
	// User A logs in.
	resp, err := rig.client.PostForm(rig.proxy.URL+"/login", url.Values{
		"username": {"alice"}, "password": {"sawdust"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()

	// A fresh client (user B) without login still gets the 403 path.
	jar, _ := cookiejar.New(nil)
	clientB := &http.Client{Jar: jar}
	respB, err := clientB.Get(rig.proxy.URL + "/ajax?action=5")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(respB.Body)
	_ = respB.Body.Close()
	if respB.StatusCode != http.StatusBadGateway {
		t.Fatalf("user B inherited user A's origin login: %d", respB.StatusCode)
	}
}

func TestLogoutDropsOriginLogin(t *testing.T) {
	rig := loginRig(t)
	resp, err := rig.client.PostForm(rig.proxy.URL+"/login", url.Values{
		"username": {"oakhand"}, "password": {"sawdust"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if _, r := rig.get(t, "/ajax?action=5"); r.StatusCode != 200 {
		t.Fatal("login did not take")
	}
	rig.get(t, "/logout")
	if _, r := rig.get(t, "/ajax?action=5"); r.StatusCode != http.StatusBadGateway {
		t.Fatalf("logout did not clear origin cookies: %d", r.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	body, resp := rig.get(t, "/stats")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("stats: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, key := range []string{`"requests"`, `"adaptations"`, `"snapshot_renders"`, `"sessions":1`} {
		if !strings.Contains(body, key) {
			t.Fatalf("stats body missing %s: %s", key, body)
		}
	}
}

func TestAssetCacheControl(t *testing.T) {
	rig := newRig(t, nil)
	body, _ := rig.get(t, "/")
	_ = body
	_, resp := rig.get(t, "/asset/snapshot.jpg")
	if got := resp.Header.Get("Cache-Control"); !strings.Contains(got, "max-age=3600") {
		t.Fatalf("snapshot cache-control = %q", got)
	}
	_, resp = rig.get(t, "/asset/forums.jpg")
	if got := resp.Header.Get("Cache-Control"); !strings.Contains(got, "max-age=300") {
		t.Fatalf("per-user asset cache-control = %q", got)
	}
}

func TestSubpageAlternateFormats(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")

	// Plain text engine.
	body, resp := rig.get(t, "/subpage/login?format=text")
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("text format: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "Log in") && !strings.Contains(body, "User Name") {
		t.Fatalf("text body = %q", body)
	}

	// PDF engine.
	body, resp = rig.get(t, "/subpage/login?format=pdf")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/pdf" {
		t.Fatalf("pdf format: %d", resp.StatusCode)
	}
	if !strings.HasPrefix(body, "%PDF-1.4") {
		t.Fatal("not a PDF")
	}

	// Image engine at low fidelity.
	body, resp = rig.get(t, "/subpage/login?format=image/low")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "image/jpeg" {
		t.Fatalf("image format: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "\xff\xd8") {
		t.Fatal("not a JPEG")
	}

	// Unknown engine is a client error.
	_, resp = rig.get(t, "/subpage/login?format=flash")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format = %d", resp.StatusCode)
	}

	// Explicit html matches the default path.
	_, resp = rig.get(t, "/subpage/login?format=html")
	if resp.StatusCode != 200 {
		t.Fatalf("html format = %d", resp.StatusCode)
	}
}

func TestAdaptationSingleFlightPerSession(t *testing.T) {
	rig := newRig(t, nil)
	// Establish the session cookie first with a cheap session-creating
	// request that does not adapt (/auth serves its form).
	rig.get(t, "/auth")

	const parallel = 8
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := rig.client.Get(rig.proxy.URL + "/subpage/login")
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if got := rig.p.Stats().Adaptations; got != 1 {
		t.Fatalf("adaptations = %d, want 1 (single flight)", got)
	}
}

func TestAssetETagConditional(t *testing.T) {
	rig := newRig(t, nil)
	rig.get(t, "/")
	_, resp := rig.get(t, "/asset/snapshot.jpg")
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag")
	}
	req, err := http.NewRequest(http.MethodGet, rig.proxy.URL+"/asset/snapshot.jpg", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	u, _ := url.Parse(rig.proxy.URL)
	for _, c := range rig.client.Jar.Cookies(u) {
		req.AddCookie(c)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional = %d", resp2.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d bytes", len(body))
	}
}

func TestFilterRuntimeFailure(t *testing.T) {
	// A "replace" filter with an invalid pattern passes spec validation
	// (only the type is checked) and fails at adapt time. The failed
	// stage degrades — the page is adapted from the unfiltered source —
	// rather than turning the whole request into a 502.
	rig := newRig(t, func(s *spec.Spec) {
		s.Filters = []spec.Filter{{Type: "replace", Params: map[string]string{"pattern": "("}}}
	})
	_, resp := rig.get(t, "/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	stats, _ := rig.get(t, "/stats")
	if !strings.Contains(stats, "degraded filter") {
		t.Fatalf("degradation not noted in /stats: %s", stats)
	}
	if c, ok := rig.p.Obs().Snapshot().Counter("msite_proxy_degraded_total",
		"stage", "filter", "site", rig.p.cfg.Spec.Name); !ok || c.Value < 1 {
		t.Fatalf("degradation counter = %+v ok=%v", c, ok)
	}
}

func TestAdaptedPageURLsAnchored(t *testing.T) {
	rig := newRig(t, func(s *spec.Spec) { s.Snapshot.Enabled = false })
	body, _ := rig.get(t, "/")
	// Origin-relative links are absolutized against the origin (the
	// who's-online member links stay on the adapted main page)...
	if !strings.Contains(body, rig.origin.URL+"/member.php") {
		t.Fatalf("member links not anchored to origin: %.300s", body)
	}
	// ...and nothing relative to the proxy host leaks through.
	if strings.Contains(body, `href="/member.php`) {
		t.Fatal("dangling relative link")
	}
	// Subpages get the same treatment.
	sub, _ := rig.get(t, "/subpage/login")
	if strings.Contains(sub, `action="/login.php"`) {
		t.Fatal("subpage form action dangling")
	}
}

func TestStatsSurfacesAdaptationNotes(t *testing.T) {
	rig := newRig(t, func(s *spec.Spec) {
		s.Objects = append(s.Objects, spec.Object{
			Name: "ghost", Selector: "#no-such-element",
			Attributes: []spec.Attribute{{Type: spec.AttrRemove}},
		})
	})
	rig.get(t, "/")
	body, _ := rig.get(t, "/stats")
	if !strings.Contains(body, "matched nothing") || !strings.Contains(body, "ghost") {
		t.Fatalf("notes missing from stats: %s", body)
	}
}

func TestSessionGCUnderLoad(t *testing.T) {
	rig := newRig(t, nil)
	var clients sync.WaitGroup
	var gcDone sync.WaitGroup
	stop := make(chan struct{})
	gcDone.Add(1)
	go func() {
		defer gcDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rig.p.cfg.Sessions.GC()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for i := 0; i < 6; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			jar, err := cookiejar.New(nil)
			if err != nil {
				t.Error(err)
				return
			}
			client := &http.Client{Jar: jar}
			for j := 0; j < 4; j++ {
				resp, err := client.Get(rig.proxy.URL + "/subpage/login")
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	gcDone.Wait()
}

// TestSnapshotPaintsRealImages wires an origin whose logo is a real PNG
// and asserts the proxy's snapshot contains the logo's pixels, proving
// the §3.2 "downloading any images to be rendered" path end-to-end.
func TestSnapshotPaintsRealImages(t *testing.T) {
	logo := image.NewRGBA(image.Rect(0, 0, 8, 8))
	magenta := color.RGBA{220, 0, 220, 255}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			logo.SetRGBA(x, y, magenta)
		}
	}
	logoPNG, err := imaging.EncodePNG(logo)
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`<html><body>
<img src="/logo.png" width="200" height="100">
<p>text below the logo</p></body></html>`))
	})
	mux.HandleFunc("/logo.png", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "image/png")
		_, _ = w.Write(logoPNG)
	})
	originSrv := httptest.NewServer(mux)
	defer originSrv.Close()

	sp := &spec.Spec{
		Name: "img", Origin: originSrv.URL + "/",
		Snapshot: spec.SnapshotSpec{Enabled: true, Fidelity: "high", Scale: 1},
	}
	sessions, err := session.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Spec: sp, Sessions: sessions, Cache: cache.New()})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()

	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	resp, err := client.Get(proxySrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()

	resp2, err := client.Get(proxySrv.URL + "/asset/snapshot.png")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp2.Body)
	_ = resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("snapshot = %d", resp2.StatusCode)
	}
	snap, err := imaging.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := snap.At(100, 50).RGBA()
	if uint8(r>>8) != 220 || uint8(g>>8) != 0 || uint8(b>>8) != 220 {
		t.Fatalf("snapshot pixel = %d,%d,%d, want magenta logo", r>>8, g>>8, b>>8)
	}
}
