package ajax

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"msite/internal/cache"
	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/spec"
)

func showpicActions(target string) []spec.Action {
	return []spec.Action{
		{ID: 1, Match: `do=showpic&id=(\d+)`, Target: target + "/site.php?do=showpic&id=$1", Extract: "#pic"},
		{ID: 2, Match: `listing\.php\?post=(\w+)`, Target: target + "/listing.php?post=$1", Extract: ".body"},
	}
}

func TestNewRewriterBadRegex(t *testing.T) {
	if _, err := NewRewriter([]spec.Action{{ID: 1, Match: "("}}, ""); err == nil {
		t.Fatal("expected error")
	}
}

func TestProxyCallEscapes(t *testing.T) {
	r, err := NewRewriter(nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ProxyCall(3, "a b&c"); got != "/ajax?action=3&p=a%20b%26c" {
		t.Fatalf("call = %q", got)
	}
}

func TestRewriteDocOnclick(t *testing.T) {
	// The paper's example: $("#picframe").load('site.php?do=showpic&id=1')
	doc := html.Parse(`<html><body>
		<a href="#" onclick="$('#picframe').load('site.php?do=showpic&id=7'); return false;">Show Picture</a>
		<a href="listing.php?post=abc123">Ad title</a>
		<a href="/unrelated">other</a>
	</body></html>`)
	r, err := NewRewriter(showpicActions("http://origin.test"), "/proxy")
	if err != nil {
		t.Fatal(err)
	}
	n := r.RewriteDoc(doc)
	if n != 2 {
		t.Fatalf("rewrites = %d", n)
	}
	out := html.Render(doc)
	// Serialized attributes escape & as &amp;.
	if !strings.Contains(out, "msiteLoad('/proxy?action=1&amp;p=7')") {
		t.Fatalf("onclick not rewritten: %s", out)
	}
	if !strings.Contains(out, `href="/proxy?action=2&amp;p=abc123"`) {
		t.Fatalf("href not rewritten: %s", out)
	}
	if !strings.Contains(out, `href="/unrelated"`) {
		t.Fatal("unrelated link touched")
	}
}

func TestInjectRuntimeIdempotent(t *testing.T) {
	doc := html.Parse(`<html><body><p>x</p></body></html>`)
	InjectRuntime(doc)
	InjectRuntime(doc)
	out := html.Render(doc)
	if strings.Count(out, `id="msite-pane"`) != 1 {
		t.Fatalf("pane count wrong: %s", out)
	}
	if strings.Count(out, "function msiteLoad") != 1 {
		t.Fatal("runtime injected twice")
	}
}

func TestInjectRuntimeNoBody(t *testing.T) {
	doc := html.Parse(``)
	InjectRuntime(doc) // must not panic
}

func originServer(t *testing.T, hits *int32) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/site.php", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(hits, 1)
		id := r.URL.Query().Get("id")
		_, _ = w.Write([]byte(`<html><body><div id="pic"><img src="/photos/` + id + `.jpg"></div><div>chrome</div></body></html>`))
	})
	mux.HandleFunc("/listing.php", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<html><body><div class="body">Classified text</div></body></html>`))
	})
	return httptest.NewServer(mux)
}

func TestDispatchExtractsFragment(t *testing.T) {
	var hits int32
	srv := originServer(t, &hits)
	defer srv.Close()

	d, err := NewDispatcher(showpicActions(srv.URL), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Dispatch(fetch.New(nil), 1, "42")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "/photos/42.jpg") {
		t.Fatalf("fragment = %s", out)
	}
	if strings.Contains(string(out), "chrome") {
		t.Fatal("extract selector should drop surrounding content")
	}
}

func TestDispatchUnknownAction(t *testing.T) {
	d, err := NewDispatcher(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dispatch(fetch.New(nil), 9, "x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDispatchCachesSharedFragments(t *testing.T) {
	var hits int32
	srv := originServer(t, &hits)
	defer srv.Close()

	actions := showpicActions(srv.URL)
	actions[0].CacheTTLSeconds = 60
	d, err := NewDispatcher(actions, cache.New())
	if err != nil {
		t.Fatal(err)
	}
	f := fetch.New(nil)
	for i := 0; i < 3; i++ {
		if _, err := d.Dispatch(f, 1, "7"); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&hits); got != 1 {
		t.Fatalf("origin hits = %d, want 1 (cached)", got)
	}
	// Different param misses the cache.
	if _, err := d.Dispatch(f, 1, "8"); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&hits); got != 2 {
		t.Fatalf("origin hits = %d, want 2", got)
	}
}

func TestDispatchEmptyExtractReturnsBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`<html><body><p>all</p><p>of it</p></body></html>`))
	}))
	defer srv.Close()
	d, err := NewDispatcher([]spec.Action{{ID: 1, Match: "x", Target: srv.URL}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Dispatch(fetch.New(nil), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "<p>all</p><p>of it</p>") {
		t.Fatalf("body = %s", out)
	}
}

func TestDispatchExtractNoMatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`<html><body><p>none</p></body></html>`))
	}))
	defer srv.Close()
	d, _ := NewDispatcher([]spec.Action{{ID: 1, Match: "x", Target: srv.URL, Extract: "#missing"}}, nil)
	if _, err := d.Dispatch(fetch.New(nil), 1, ""); err == nil {
		t.Fatal("expected error for unmatched extract")
	}
}

func TestSubstituteParam(t *testing.T) {
	if got := substituteParam("http://o/p?id=$1&x=$1", "a/b"); got != "http://o/p?id=a%2Fb&x=a%2Fb" {
		t.Fatalf("got %q", got)
	}
	if got := substituteParam("http://o/static", "ignored"); got != "http://o/static" {
		t.Fatalf("got %q", got)
	}
}
