// Package ajax implements m.Site's AJAX support (§4.4): rather than
// keeping a remote browser per client, the proxy rewrites the
// asynchronous calls embedded in origin markup into static calls of the
// form proxy?action=N&p=M, and registers a server-side handler per
// action that fetches the origin resource, massages the response with
// server-side jQuery, and returns the fragment as the AJAX response.
package ajax

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"msite/internal/cache"
	"msite/internal/dom"
	"msite/internal/fetch"
	"msite/internal/html"
	"msite/internal/jq"
	"msite/internal/spec"
)

// DefaultEndpoint is the proxy path AJAX rewrites target.
const DefaultEndpoint = "/ajax"

// Rewriter rewrites origin documents against a set of action rules.
type Rewriter struct {
	// Endpoint is the proxy URL prefix (default /ajax).
	Endpoint string

	actions []compiledAction
}

type compiledAction struct {
	spec spec.Action
	re   *regexp.Regexp
}

// NewRewriter compiles the actions. Invalid regexes fail here rather
// than at request time.
func NewRewriter(actions []spec.Action, endpoint string) (*Rewriter, error) {
	if endpoint == "" {
		endpoint = DefaultEndpoint
	}
	r := &Rewriter{Endpoint: endpoint}
	for _, a := range actions {
		re, err := regexp.Compile(a.Match)
		if err != nil {
			return nil, fmt.Errorf("ajax: compiling action %d: %w", a.ID, err)
		}
		r.actions = append(r.actions, compiledAction{spec: a, re: re})
	}
	return r, nil
}

// ProxyCall builds the rewritten call URL for an action and parameter.
func (r *Rewriter) ProxyCall(actionID int, param string) string {
	return fmt.Sprintf("%s?action=%d&p=%s", r.Endpoint, actionID, urlEscape(param))
}

// RewriteDoc scans event-handler and href attributes under root for
// action matches and rewrites them into proxy calls. It returns how many
// attributes were rewritten.
//
// The first capture group of the action's Match becomes the p parameter,
// mirroring the paper's example where
// $("#picframe").load('site.php?do=showpic&id=1') becomes
// proxy.php?action=1&p=1.
func (r *Rewriter) RewriteDoc(root *dom.Node) int {
	count := 0
	attrs := []string{"onclick", "onchange", "onsubmit", "href", "data-load"}
	root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		for _, key := range attrs {
			val, ok := n.Attr(key)
			if !ok || val == "" {
				continue
			}
			for _, ca := range r.actions {
				m := ca.re.FindStringSubmatch(val)
				if m == nil {
					continue
				}
				param := ""
				if len(m) > 1 {
					param = m[1]
				}
				call := r.ProxyCall(ca.spec.ID, param)
				switch key {
				case "href":
					n.SetAttr("href", call)
					// Promote full-page links into asynchronous loads on
					// AJAX-capable clients.
					n.SetAttr("onclick", "return msiteLoad('"+call+"');")
				default:
					n.SetAttr(key, "return msiteLoad('"+call+"');")
				}
				count++
				break
			}
		}
		return true
	})
	return count
}

// ClientRuntimeJS is injected once per adapted page: msiteLoad fetches a
// proxy action response into the target div ("#msite-pane" by default)
// without a page reload.
const ClientRuntimeJS = `function msiteLoad(url) {
  var pane = document.getElementById('msite-pane');
  if (!pane) { window.location = url; return false; }
  var xhr = new XMLHttpRequest();
  xhr.open('GET', url, true);
  xhr.onreadystatechange = function () {
    if (xhr.readyState === 4 && xhr.status === 200) {
      pane.innerHTML = xhr.responseText;
      pane.style.display = 'block';
    }
  };
  xhr.send(null);
  return false;
}
`

// InjectRuntime adds the client runtime script and the response pane div
// to a document, once.
func InjectRuntime(doc *dom.Node) {
	body := doc.Body()
	if body == nil {
		return
	}
	if doc.ElementByID("msite-pane") == nil {
		pane := dom.NewElement("div")
		pane.SetAttr("id", "msite-pane")
		pane.SetAttr("style", "display: none")
		body.AppendChild(pane)
	}
	already := doc.FindFirst(func(n *dom.Node) bool {
		return n.Tag == "script" && n.AttrOr("data-msite", "") == "runtime"
	})
	if already == nil {
		script := dom.NewElement("script")
		script.SetAttr("type", "text/javascript")
		script.SetAttr("data-msite", "runtime")
		script.AppendChild(dom.NewText(ClientRuntimeJS))
		body.AppendChild(script)
	}
}

// Dispatcher satisfies rewritten calls on the server side.
type Dispatcher struct {
	actions map[int]compiledAction
	cache   cache.Layer
}

// NewDispatcher builds a dispatcher over the same action set. cache may
// be nil to disable fragment sharing.
func NewDispatcher(actions []spec.Action, c cache.Layer) (*Dispatcher, error) {
	d := &Dispatcher{actions: make(map[int]compiledAction), cache: c}
	for _, a := range actions {
		re, err := regexp.Compile(a.Match)
		if err != nil {
			return nil, fmt.Errorf("ajax: compiling action %d: %w", a.ID, err)
		}
		d.actions[a.ID] = compiledAction{spec: a, re: re}
	}
	return d, nil
}

// Dispatch runs action id with parameter p on behalf of a session: fetch
// the target (substituting $1), extract the configured fragment, and
// return the HTML fragment bytes. Shared fragments are cached across
// clients per the action's TTL.
func (d *Dispatcher) Dispatch(f *fetch.Fetcher, id int, p string) ([]byte, error) {
	return d.DispatchContext(context.Background(), f, id, p)
}

// DispatchContext is Dispatch bound to a caller deadline/cancellation:
// the origin fetch behind the action aborts when ctx ends.
func (d *Dispatcher) DispatchContext(ctx context.Context, f *fetch.Fetcher, id int, p string) ([]byte, error) {
	ca, ok := d.actions[id]
	if !ok {
		return nil, fmt.Errorf("ajax: unknown action %d", id)
	}
	target := substituteParam(ca.spec.Target, p)
	fill := func() (cache.Entry, error) {
		page, err := f.GetContext(ctx, target)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("ajax: action %d fetch: %w", id, err)
		}
		fragment, err := extractFragment(string(page.Body), ca.spec.Extract)
		if err != nil {
			return cache.Entry{}, fmt.Errorf("ajax: action %d: %w", id, err)
		}
		return cache.Entry{Data: []byte(fragment), MIME: "text/html; charset=utf-8"}, nil
	}
	ttl := time.Duration(ca.spec.CacheTTLSeconds) * time.Second
	if d.cache == nil || ttl <= 0 {
		e, err := fill()
		return e.Data, err
	}
	key := "ajax:" + strconv.Itoa(id) + ":" + p
	e, err := d.cache.GetOrFill(key, ttl, fill)
	if err != nil {
		return nil, err
	}
	return e.Data, nil
}

// extractFragment applies the Extract selector through server-side
// jQuery. An empty selector returns the page body's inner HTML.
func extractFragment(pageHTML, selector string) (string, error) {
	doc := html.Tidy(pageHTML)
	if selector == "" {
		body := doc.Body()
		if body == nil {
			return html.Render(doc), nil
		}
		var b strings.Builder
		for c := body.FirstChild; c != nil; c = c.NextSibling {
			b.WriteString(html.Render(c))
		}
		return b.String(), nil
	}
	sel := jq.Select(doc, selector)
	if err := sel.Err(); err != nil {
		return "", err
	}
	if sel.Len() == 0 {
		return "", fmt.Errorf("extract selector %q matched nothing", selector)
	}
	return sel.OuterHtml(), nil
}

// substituteParam replaces $1 (and $2..$9, all with the same single
// parameter the rewritten URL carries as p) in the target template.
func substituteParam(target, p string) string {
	escaped := urlEscape(p)
	for i := 9; i >= 1; i-- {
		target = strings.ReplaceAll(target, "$"+strconv.Itoa(i), escaped)
	}
	return target
}

func urlEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == '~':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}
