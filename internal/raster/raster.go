// Package raster paints a laid-out box tree into an image.RGBA. Together
// with layout it forms the server-side rendering engine that replaces the
// paper's embedded WebKit: backgrounds, borders, replaced-element
// placeholders, and real bitmap text, all in pure Go.
package raster

import (
	"image"
	"image/color"
	"image/draw"

	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/imaging"
	"msite/internal/layout"
)

// Options configures painting.
type Options struct {
	// Background is the page background; defaults to white.
	Background color.RGBA
	// MinHeight pads the canvas to at least this many pixels tall.
	MinHeight int
	// SkipText suppresses text runs, painting only boxes, borders, and
	// placeholders. Partial CSS pre-rendering (§3.3) uses this to build
	// the background image the device overlays text onto.
	SkipText bool
	// Antialias applies a deterministic sub-perceptual jitter after
	// painting, modeling the pixel-level entropy of a real browser's
	// antialiased rendering. Without it the synthetic flat-color output
	// compresses unrealistically well in PNG, inverting the paper's
	// image-fidelity relationship; the experiments enable it so encoded
	// sizes behave like real screenshots.
	Antialias bool
	// Images maps <img src> attribute values (as written, or absolute) to
	// decoded images. Replaced elements whose src resolves here paint the
	// real pixels, scaled to the box; everything else gets the
	// placeholder. The proxy fills this from the subresources it
	// downloads on the client's behalf (§3.2).
	Images map[string]image.Image
}

// Paint rasterizes a layout result into a new RGBA image.
func Paint(res *layout.Result, opts Options) *image.RGBA {
	bg := opts.Background
	if bg.A == 0 {
		bg = color.RGBA{255, 255, 255, 255}
	}
	// Respect an explicit body background if painted box has one.
	if res.Root != nil {
		if c, ok := css.ParseColor(res.Root.Style.Get("background-color", "")); ok && c.A > 0 {
			bg = c
		}
	}
	h := res.Height
	if h < opts.MinHeight {
		h = opts.MinHeight
	}
	if h < 1 {
		h = 1
	}
	w := res.Width
	if w < 1 {
		w = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	draw.Draw(img, img.Bounds(), &image.Uniform{C: bg}, image.Point{}, draw.Src)
	if res.Root != nil {
		paintBox(img, res.Root, opts)
	}
	if opts.Antialias {
		applyAntialiasJitter(img)
	}
	return img
}

// applyAntialiasJitter perturbs a deterministic ~30% subset of pixels by
// ±2 per channel — invisible to the eye, but it restores the entropy an
// antialiased rendering carries so the PNG/JPEG fidelity ladder matches
// real screenshot behaviour.
func applyAntialiasJitter(img *image.RGBA) {
	b := img.Bounds()
	state := uint32(0x9e3779b9)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		row := img.Pix[img.PixOffset(b.Min.X, y):img.PixOffset(b.Max.X, y)]
		for i := 0; i+3 < len(row); i += 4 {
			state = state*1664525 + 1013904223
			if state>>24 > 33 { // ~13% of pixels
				continue
			}
			for ch := 0; ch < 3; ch++ {
				state = state*1664525 + 1013904223
				delta := int(state>>30) - 1 // -1, 0, 1, 2
				v := int(row[i+ch]) + delta
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				row[i+ch] = uint8(v)
			}
		}
	}
}

func paintBox(img *image.RGBA, b *layout.Box, opts Options) {
	paintBackground(img, b)
	paintBorders(img, b)
	if b.Node != nil && b.Node.Type == dom.ElementNode && isReplaced(b.Node.Tag) {
		if !paintRealImage(img, b, opts) {
			paintPlaceholder(img, b)
		}
	}
	if !opts.SkipText {
		for _, run := range b.Runs {
			paintRun(img, run)
		}
	}
	for _, c := range b.Children {
		paintBox(img, c, opts)
	}
}

// paintRealImage paints the decoded source image scaled into the box,
// returning false when no decoded image is available.
func paintRealImage(dst *image.RGBA, b *layout.Box, opts Options) bool {
	if len(opts.Images) == 0 || b.Node == nil {
		return false
	}
	src, ok := b.Node.Attr("src")
	if !ok || src == "" {
		return false
	}
	decoded, ok := opts.Images[src]
	if !ok {
		return false
	}
	w, h := int(b.W), int(b.H)
	if w <= 0 || h <= 0 {
		return false
	}
	scaled := imaging.Scale(decoded, w, h)
	x0, y0 := int(b.X), int(b.Y)
	bounds := dst.Bounds()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px, py := x0+x, y0+y
			if px < bounds.Min.X || px >= bounds.Max.X || py < bounds.Min.Y || py >= bounds.Max.Y {
				continue
			}
			dst.SetRGBA(px, py, scaled.RGBAAt(x, y))
		}
	}
	return true
}

func isReplaced(tag string) bool {
	switch tag {
	case "img", "iframe", "embed", "object", "video", "canvas":
		return true
	}
	return false
}

func paintBackground(img *image.RGBA, b *layout.Box) {
	c, ok := css.ParseColor(b.Style.Get("background-color", ""))
	if !ok || c.A == 0 {
		return
	}
	fillRect(img, int(b.X), int(b.Y), int(b.W), int(b.H), c)
}

func paintBorders(img *image.RGBA, b *layout.Box) {
	side := func(name string) (int, color.RGBA, bool) {
		style := b.Style.Get("border-"+name+"-style", "")
		if style == "" || style == "none" || style == "hidden" {
			return 0, color.RGBA{}, false
		}
		w, ok := css.ParseLength(b.Style.Get("border-"+name+"-width", "3"), 0)
		if !ok || w <= 0 {
			return 0, color.RGBA{}, false
		}
		c, ok := css.ParseColor(b.Style.Get("border-"+name+"-color", "black"))
		if !ok {
			c = color.RGBA{A: 255}
		}
		return int(w + 0.5), c, true
	}
	x, y, w, h := int(b.X), int(b.Y), int(b.W), int(b.H)
	if bw, c, ok := side("top"); ok {
		fillRect(img, x, y, w, bw, c)
	}
	if bw, c, ok := side("bottom"); ok {
		fillRect(img, x, y+h-bw, w, bw, c)
	}
	if bw, c, ok := side("left"); ok {
		fillRect(img, x, y, bw, h, c)
	}
	if bw, c, ok := side("right"); ok {
		fillRect(img, x+w-bw, y, bw, h, c)
	}
}

// paintPlaceholder draws the conventional replaced-element placeholder:
// a light box with a border and a diagonal cross, standing in for image
// bytes the renderer does not decode.
func paintPlaceholder(img *image.RGBA, b *layout.Box) {
	x, y, w, h := int(b.X), int(b.Y), int(b.W), int(b.H)
	if w <= 0 || h <= 0 {
		return
	}
	fill := color.RGBA{203, 213, 225, 255}
	border := color.RGBA{100, 116, 139, 255}
	fillRect(img, x, y, w, h, fill)
	fillRect(img, x, y, w, 1, border)
	fillRect(img, x, y+h-1, w, 1, border)
	fillRect(img, x, y, 1, h, border)
	fillRect(img, x+w-1, y, 1, h, border)
	// Diagonals.
	steps := w
	if h > steps {
		steps = h
	}
	for i := 0; i < steps; i++ {
		px := x + i*w/steps
		py := y + i*h/steps
		setPx(img, px, py, border)
		setPx(img, x+w-1-(px-x), py, border)
	}
}

func paintRun(img *image.RGBA, run layout.TextRun) {
	scale := layout.GlyphScale(run.FontSize)
	x := run.X
	col := run.Color
	if col.A == 0 {
		col = color.RGBA{A: 255}
	}
	for _, r := range run.Text {
		glyph := glyphFor(r)
		drawGlyph(img, glyph, x, run.Y, scale, col, run.Bold, run.Italic)
		x += layout.CharWidth(run.FontSize)
	}
	if run.Underline {
		thickness := int(scale)
		if thickness < 1 {
			thickness = 1
		}
		fillRect(img, int(run.X), int(run.Y+run.Height())+1,
			int(run.Width()+0.5), thickness, col)
	}
}

// drawGlyph paints one 5x7 glyph scaled to the font size. Bold widens
// each column by one device pixel; italic shears columns rightward with
// height.
func drawGlyph(img *image.RGBA, glyph [5]byte, x, y, scale float64, c color.RGBA, bold, italic bool) {
	for colIdx := 0; colIdx < layout.GlyphCols; colIdx++ {
		bits := glyph[colIdx]
		for rowIdx := 0; rowIdx < layout.GlyphRows; rowIdx++ {
			if bits&(1<<uint(rowIdx)) == 0 {
				continue
			}
			px0 := x + float64(colIdx)*scale
			py0 := y + float64(rowIdx)*scale
			if italic {
				px0 += (float64(layout.GlyphRows-rowIdx) * scale) * 0.2
			}
			wpx := int(px0+scale) - int(px0)
			hpx := int(py0+scale) - int(py0)
			if wpx < 1 {
				wpx = 1
			}
			if hpx < 1 {
				hpx = 1
			}
			if bold {
				wpx++
			}
			fillRect(img, int(px0), int(py0), wpx, hpx, c)
		}
	}
}

func fillRect(img *image.RGBA, x, y, w, h int, c color.RGBA) {
	bounds := img.Bounds()
	x0, y0 := max(x, bounds.Min.X), max(y, bounds.Min.Y)
	x1, y1 := min(x+w, bounds.Max.X), min(y+h, bounds.Max.Y)
	for py := y0; py < y1; py++ {
		for px := x0; px < x1; px++ {
			img.SetRGBA(px, py, c)
		}
	}
}

func setPx(img *image.RGBA, x, y int, c color.RGBA) {
	if image.Pt(x, y).In(img.Bounds()) {
		img.SetRGBA(x, y, c)
	}
}
