// Package raster paints a laid-out box tree into an image.RGBA. Together
// with layout it forms the server-side rendering engine that replaces the
// paper's embedded WebKit: backgrounds, borders, replaced-element
// placeholders, and real bitmap text, all in pure Go.
package raster

import (
	"image"
	"image/color"
	"image/draw"
	"runtime"
	"sync"

	"msite/internal/css"
	"msite/internal/dom"
	"msite/internal/imaging"
	"msite/internal/layout"
)

// Options configures painting.
type Options struct {
	// Background is the page background; defaults to white.
	Background color.RGBA
	// MinHeight pads the canvas to at least this many pixels tall.
	MinHeight int
	// SkipText suppresses text runs, painting only boxes, borders, and
	// placeholders. Partial CSS pre-rendering (§3.3) uses this to build
	// the background image the device overlays text onto.
	SkipText bool
	// Antialias applies a deterministic sub-perceptual jitter after
	// painting, modeling the pixel-level entropy of a real browser's
	// antialiased rendering. Without it the synthetic flat-color output
	// compresses unrealistically well in PNG, inverting the paper's
	// image-fidelity relationship; the experiments enable it so encoded
	// sizes behave like real screenshots.
	Antialias bool
	// Images maps <img src> attribute values (as written, or absolute) to
	// decoded images. Replaced elements whose src resolves here paint the
	// real pixels, scaled to the box; everything else gets the
	// placeholder. The proxy fills this from the subresources it
	// downloads on the client's behalf (§3.2).
	Images map[string]image.Image
	// Workers is the number of goroutines painting horizontal bands of
	// the framebuffer (the -raster-workers knob). 0 uses GOMAXPROCS;
	// 1 forces the serial path. Output is byte-identical for every
	// worker count: each band paints exactly the primitives that
	// intersect it, clipped to its rows.
	Workers int
}

// Paint rasterizes a layout result into a new RGBA image. The frame's
// backing array may come from a recycled pool; callers that are done
// with the image can hand it back with Release.
func Paint(res *layout.Result, opts Options) *image.RGBA {
	img := newFrame(res, opts)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if res.Root != nil {
		// Replaced-element images are scaled once up front: a box
		// spanning several bands must not re-run the (expensive) scale
		// per band, and the shared read-only map keeps bands
		// independent.
		scaled := prescaleImages(res.Root, opts, nil)
		forEachBand(img, workers, func(view *image.RGBA) {
			paintBox(view, res.Root, opts, scaled)
		})
		releaseScaled(scaled)
	}
	if opts.Antialias {
		forEachBand(img, workers, applyAntialiasJitter)
	}
	return img
}

// newFrame allocates the framebuffer (from the shared pixel pool) and
// fills it edge-to-edge with the page background, so the pooled
// memory's stale contents never show through.
func newFrame(res *layout.Result, opts Options) *image.RGBA {
	bg := opts.Background
	if bg.A == 0 {
		bg = color.RGBA{255, 255, 255, 255}
	}
	// Respect an explicit body background if painted box has one.
	if res.Root != nil {
		if c, ok := css.ParseColor(res.Root.Style.Get("background-color", "")); ok && c.A > 0 {
			bg = c
		}
	}
	h := res.Height
	if h < opts.MinHeight {
		h = opts.MinHeight
	}
	if h < 1 {
		h = 1
	}
	w := res.Width
	if w < 1 {
		w = 1
	}
	img := imaging.GetRGBA(w, h)
	draw.Draw(img, img.Bounds(), &image.Uniform{C: bg}, image.Point{}, draw.Src)
	return img
}

// Release recycles a frame returned by Paint or StreamPaint once the
// caller has encoded or copied it. Nil-safe; the frame must not be used
// afterwards.
func Release(img *image.RGBA) { imaging.PutRGBA(img) }

// releaseScaled recycles the pre-scaled replaced-element scratch images
// once painting no longer references them.
func releaseScaled(scaled map[*layout.Box]*image.RGBA) {
	for _, img := range scaled {
		imaging.PutRGBA(img)
	}
}

// forEachBand partitions img into up to workers horizontal strips and
// runs paint on a clipped view of each, concurrently. One band (or a
// one-row image) degenerates to a direct serial call.
func forEachBand(img *image.RGBA, workers int, paint func(view *image.RGBA)) {
	b := img.Bounds()
	h := b.Dy()
	if workers > h {
		workers = h
	}
	if workers <= 1 {
		paint(img)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		// Split rows evenly; the first h%workers bands get one extra.
		y0 := b.Min.Y + i*h/workers
		y1 := b.Min.Y + (i+1)*h/workers
		view := img.SubImage(image.Rect(b.Min.X, y0, b.Max.X, y1)).(*image.RGBA)
		go func(view *image.RGBA) {
			defer wg.Done()
			paint(view)
		}(view)
	}
	wg.Wait()
}

// applyAntialiasJitter perturbs a deterministic ~13% subset of pixels by
// a couple of counts per channel — invisible to the eye, but it restores
// the entropy an antialiased rendering carries so the PNG/JPEG fidelity
// ladder matches real screenshot behaviour. The generator is seeded per
// row, so any horizontal banding produces identical bytes.
func applyAntialiasJitter(img *image.RGBA) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		state := uint32(0x9e3779b9) ^ (uint32(y)*2654435761 + 1)
		row := img.Pix[img.PixOffset(b.Min.X, y):img.PixOffset(b.Max.X, y)]
		for i := 0; i+3 < len(row); i += 4 {
			state = state*1664525 + 1013904223
			if state>>24 > 33 { // ~13% of pixels
				continue
			}
			for ch := 0; ch < 3; ch++ {
				state = state*1664525 + 1013904223
				delta := int(state>>30) - 1 // -1, 0, 1, 2
				v := int(row[i+ch]) + delta
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				row[i+ch] = uint8(v)
			}
		}
	}
}

// prescaleImages walks the box tree scaling every replaced element's
// decoded image to its box size, keyed by box. The returned map is
// read-only during painting, shared by every band worker.
func prescaleImages(b *layout.Box, opts Options, out map[*layout.Box]*image.RGBA) map[*layout.Box]*image.RGBA {
	if len(opts.Images) == 0 {
		return nil
	}
	if b.Node != nil && b.Node.Type == dom.ElementNode && isReplaced(b.Node.Tag) {
		if src, ok := b.Node.Attr("src"); ok && src != "" {
			if decoded, ok := opts.Images[src]; ok {
				w, h := int(b.W), int(b.H)
				if w > 0 && h > 0 {
					if out == nil {
						out = make(map[*layout.Box]*image.RGBA)
					}
					// Pooled scratch: ScaleInto writes every pixel, and
					// releaseScaled recycles the buffer after painting.
					dst := imaging.GetRGBA(w, h)
					imaging.ScaleInto(dst, decoded)
					out[b] = dst
				}
			}
		}
	}
	for _, c := range b.Children {
		out = prescaleImages(c, opts, out)
	}
	return out
}

// boxIntersects reports whether the box's own painted rectangle (the
// exact pixels paintBackground/paintBorders/paintPlaceholder touch)
// overlaps clip. Children are NOT covered: they may overflow the parent
// and are tested on their own during the walk.
func boxIntersects(b *layout.Box, clip image.Rectangle) bool {
	x, y, w, h := int(b.X), int(b.Y), int(b.W), int(b.H)
	return x < clip.Max.X && x+w > clip.Min.X && y < clip.Max.Y && y+h > clip.Min.Y
}

// runIntersects is a conservative clip test for one text run: the
// bounding rectangle is inflated past the glyph cell to cover the
// italic shear, the bold widening, and the underline rule, so a band
// never skips a run that would touch it.
func runIntersects(run layout.TextRun, clip image.Rectangle) bool {
	pad := int(layout.GlyphHeight(run.FontSize)) + 4
	x0 := int(run.X) - pad
	y0 := int(run.Y) - pad
	x1 := int(run.X+run.Width()) + pad
	y1 := int(run.Y+run.Height()) + pad
	return x0 < clip.Max.X && x1 > clip.Min.X && y0 < clip.Max.Y && y1 > clip.Min.Y
}

func paintBox(img *image.RGBA, b *layout.Box, opts Options, scaled map[*layout.Box]*image.RGBA) {
	clip := img.Bounds()
	if boxIntersects(b, clip) {
		paintBackground(img, b)
		paintBorders(img, b)
		if b.Node != nil && b.Node.Type == dom.ElementNode && isReplaced(b.Node.Tag) {
			if !paintRealImage(img, b, scaled) {
				paintPlaceholder(img, b)
			}
		}
	}
	if !opts.SkipText {
		for _, run := range b.Runs {
			if runIntersects(run, clip) {
				paintRun(img, run)
			}
		}
	}
	for _, c := range b.Children {
		paintBox(img, c, opts, scaled)
	}
}

// paintRealImage blits the pre-scaled source image into the box,
// returning false when no decoded image is available.
func paintRealImage(dst *image.RGBA, b *layout.Box, scaled map[*layout.Box]*image.RGBA) bool {
	src, ok := scaled[b]
	if !ok {
		return false
	}
	w, h := int(b.W), int(b.H)
	x0, y0 := int(b.X), int(b.Y)
	bounds := dst.Bounds()
	// Only walk the rows this view can accept — under banding that is
	// the strip, so total blit work stays ~constant across workers.
	yStart, yEnd := 0, h
	if y0 < bounds.Min.Y {
		yStart = bounds.Min.Y - y0
	}
	if y0+yEnd > bounds.Max.Y {
		yEnd = bounds.Max.Y - y0
	}
	for y := yStart; y < yEnd; y++ {
		for x := 0; x < w; x++ {
			px, py := x0+x, y0+y
			if px < bounds.Min.X || px >= bounds.Max.X || py < bounds.Min.Y || py >= bounds.Max.Y {
				continue
			}
			dst.SetRGBA(px, py, src.RGBAAt(x, y))
		}
	}
	return true
}

func isReplaced(tag string) bool {
	switch tag {
	case "img", "iframe", "embed", "object", "video", "canvas":
		return true
	}
	return false
}

func paintBackground(img *image.RGBA, b *layout.Box) {
	c, ok := css.ParseColor(b.Style.Get("background-color", ""))
	if !ok || c.A == 0 {
		return
	}
	fillRect(img, int(b.X), int(b.Y), int(b.W), int(b.H), c)
}

func paintBorders(img *image.RGBA, b *layout.Box) {
	side := func(name string) (int, color.RGBA, bool) {
		style := b.Style.Get("border-"+name+"-style", "")
		if style == "" || style == "none" || style == "hidden" {
			return 0, color.RGBA{}, false
		}
		w, ok := css.ParseLength(b.Style.Get("border-"+name+"-width", "3"), 0)
		if !ok || w <= 0 {
			return 0, color.RGBA{}, false
		}
		c, ok := css.ParseColor(b.Style.Get("border-"+name+"-color", "black"))
		if !ok {
			c = color.RGBA{A: 255}
		}
		return int(w + 0.5), c, true
	}
	x, y, w, h := int(b.X), int(b.Y), int(b.W), int(b.H)
	if bw, c, ok := side("top"); ok {
		fillRect(img, x, y, w, bw, c)
	}
	if bw, c, ok := side("bottom"); ok {
		fillRect(img, x, y+h-bw, w, bw, c)
	}
	if bw, c, ok := side("left"); ok {
		fillRect(img, x, y, bw, h, c)
	}
	if bw, c, ok := side("right"); ok {
		fillRect(img, x+w-bw, y, bw, h, c)
	}
}

// paintPlaceholder draws the conventional replaced-element placeholder:
// a light box with a border and a diagonal cross, standing in for image
// bytes the renderer does not decode.
func paintPlaceholder(img *image.RGBA, b *layout.Box) {
	x, y, w, h := int(b.X), int(b.Y), int(b.W), int(b.H)
	if w <= 0 || h <= 0 {
		return
	}
	fill := color.RGBA{203, 213, 225, 255}
	border := color.RGBA{100, 116, 139, 255}
	fillRect(img, x, y, w, h, fill)
	fillRect(img, x, y, w, 1, border)
	fillRect(img, x, y+h-1, w, 1, border)
	fillRect(img, x, y, 1, h, border)
	fillRect(img, x+w-1, y, 1, h, border)
	// Diagonals.
	steps := w
	if h > steps {
		steps = h
	}
	for i := 0; i < steps; i++ {
		px := x + i*w/steps
		py := y + i*h/steps
		setPx(img, px, py, border)
		setPx(img, x+w-1-(px-x), py, border)
	}
}

func paintRun(img *image.RGBA, run layout.TextRun) {
	scale := layout.GlyphScale(run.FontSize)
	x := run.X
	col := run.Color
	if col.A == 0 {
		col = color.RGBA{A: 255}
	}
	for _, r := range run.Text {
		glyph := glyphFor(r)
		drawGlyph(img, glyph, x, run.Y, scale, col, run.Bold, run.Italic)
		x += layout.CharWidth(run.FontSize)
	}
	if run.Underline {
		thickness := int(scale)
		if thickness < 1 {
			thickness = 1
		}
		fillRect(img, int(run.X), int(run.Y+run.Height())+1,
			int(run.Width()+0.5), thickness, col)
	}
}

// drawGlyph paints one 5x7 glyph scaled to the font size. Bold widens
// each column by one device pixel; italic shears columns rightward with
// height.
func drawGlyph(img *image.RGBA, glyph [5]byte, x, y, scale float64, c color.RGBA, bold, italic bool) {
	for colIdx := 0; colIdx < layout.GlyphCols; colIdx++ {
		bits := glyph[colIdx]
		for rowIdx := 0; rowIdx < layout.GlyphRows; rowIdx++ {
			if bits&(1<<uint(rowIdx)) == 0 {
				continue
			}
			px0 := x + float64(colIdx)*scale
			py0 := y + float64(rowIdx)*scale
			if italic {
				px0 += (float64(layout.GlyphRows-rowIdx) * scale) * 0.2
			}
			wpx := int(px0+scale) - int(px0)
			hpx := int(py0+scale) - int(py0)
			if wpx < 1 {
				wpx = 1
			}
			if hpx < 1 {
				hpx = 1
			}
			if bold {
				wpx++
			}
			fillRect(img, int(px0), int(py0), wpx, hpx, c)
		}
	}
}

func fillRect(img *image.RGBA, x, y, w, h int, c color.RGBA) {
	bounds := img.Bounds()
	x0, y0 := max(x, bounds.Min.X), max(y, bounds.Min.Y)
	x1, y1 := min(x+w, bounds.Max.X), min(y+h, bounds.Max.Y)
	for py := y0; py < y1; py++ {
		for px := x0; px < x1; px++ {
			img.SetRGBA(px, py, c)
		}
	}
}

func setPx(img *image.RGBA, x, y int, c color.RGBA) {
	if image.Pt(x, y).In(img.Bounds()) {
		img.SetRGBA(x, y, c)
	}
}
