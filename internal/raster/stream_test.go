package raster

import (
	"bytes"
	"image"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/layout"
)

const streamTestPage = `<html><body>
	<div style="background-color: #336699; width: 200px; height: 60px"></div>
	<p>Hello streaming world, with enough text to paint several runs.</p>
	<div style="border: 2px solid red; width: 120px; height: 300px"></div>
	<p>More text below the fold so the frame spans many bands.</p>
</body></html>`

func streamLayout(t *testing.T, width int) *layout.Result {
	t.Helper()
	doc := html.Parse(streamTestPage)
	styler := css.StylerForDocument(doc)
	return layout.Layout(doc, styler, layout.Viewport{Width: width})
}

// clone copies an RGBA frame so a later paint cannot alias it through
// the frame pool.
func clone(img *image.RGBA) *image.RGBA {
	out := image.NewRGBA(img.Rect)
	copy(out.Pix, img.Pix)
	return out
}

func TestStreamPaintMatchesPaint(t *testing.T) {
	res := streamLayout(t, 320)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{Workers: 1}},
		{"parallel", Options{Workers: 4}},
		{"default-workers", Options{}},
		{"antialias", Options{Workers: 3, Antialias: true}},
		{"many-workers", Options{Workers: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := clone(Paint(res, tc.opts))
			got := StreamPaint(res, tc.opts, func(*image.RGBA) {})
			if want.Rect != got.Rect {
				t.Fatalf("bounds: streamed %v, buffered %v", got.Rect, want.Rect)
			}
			if !bytes.Equal(want.Pix, got.Pix) {
				t.Fatal("StreamPaint frame differs from Paint")
			}
		})
	}
}

func TestStreamPaintDeliversOrderedFullCoverage(t *testing.T) {
	res := streamLayout(t, 320)
	var bands []image.Rectangle
	frame := StreamPaint(res, Options{Workers: 5}, func(view *image.RGBA) {
		bands = append(bands, view.Bounds())
	})
	if len(bands) == 0 {
		t.Fatal("no bands delivered")
	}
	b := frame.Bounds()
	nextY := b.Min.Y
	for i, r := range bands {
		if r.Min.X != b.Min.X || r.Max.X != b.Max.X {
			t.Fatalf("band %d spans x %d..%d, want %d..%d", i, r.Min.X, r.Max.X, b.Min.X, b.Max.X)
		}
		if r.Min.Y != nextY {
			t.Fatalf("band %d starts at y=%d, want %d (out of order or gapped)", i, r.Min.Y, nextY)
		}
		if r.Max.Y <= r.Min.Y {
			t.Fatalf("band %d is empty: %v", i, r)
		}
		nextY = r.Max.Y
	}
	if nextY != b.Max.Y {
		t.Fatalf("bands cover rows up to %d, frame ends at %d", nextY, b.Max.Y)
	}
}

func TestStreamPaintBandsAreFinalPixels(t *testing.T) {
	res := streamLayout(t, 320)
	opts := Options{Workers: 4}
	want := clone(Paint(res, opts))
	// Copy each band's pixels at delivery time; the stream must already
	// hold the final image content band by band.
	got := image.NewRGBA(want.Rect)
	StreamPaint(res, opts, func(view *image.RGBA) {
		r := view.Bounds()
		for y := r.Min.Y; y < r.Max.Y; y++ {
			i := view.PixOffset(r.Min.X, y)
			o := got.PixOffset(r.Min.X, y)
			copy(got.Pix[o:o+r.Dx()*4], view.Pix[i:i+r.Dx()*4])
		}
	})
	if !bytes.Equal(want.Pix, got.Pix) {
		t.Fatal("band-copied pixels differ from the final Paint frame")
	}
}

func TestStreamPaintNilBandFunc(t *testing.T) {
	res := streamLayout(t, 320)
	want := clone(Paint(res, Options{Workers: 2}))
	got := StreamPaint(res, Options{Workers: 2}, nil)
	if !bytes.Equal(want.Pix, got.Pix) {
		t.Fatal("nil onBand should degenerate to Paint")
	}
}
