package raster

import (
	"image"
	"image/color"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/layout"
)

func paint(t *testing.T, src string, width int) (*image.RGBA, *layout.Result) {
	t.Helper()
	doc := html.Parse(src)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: width})
	img := Paint(res, Options{})
	return img, res
}

func TestPaintFillsBackgroundWhite(t *testing.T) {
	img, _ := paint(t, `<html><body><p>x</p></body></html>`, 100)
	c := img.RGBAAt(99, 0)
	if c != (color.RGBA{255, 255, 255, 255}) {
		t.Fatalf("corner = %v", c)
	}
}

func TestPaintBodyBackground(t *testing.T) {
	img, _ := paint(t, `<html><body style="background-color: #102030; height: 50px"></body></html>`, 100)
	c := img.RGBAAt(50, 25)
	if c != (color.RGBA{0x10, 0x20, 0x30, 255}) {
		t.Fatalf("bg = %v", c)
	}
}

func TestPaintElementBackground(t *testing.T) {
	img, _ := paint(t, `<html><body>
		<div style="background-color: red; width: 40px; height: 20px"></div>
	</body></html>`, 100)
	if got := img.RGBAAt(10, 10); got != (color.RGBA{255, 0, 0, 255}) {
		t.Fatalf("inside = %v", got)
	}
	if got := img.RGBAAt(60, 10); got != (color.RGBA{255, 255, 255, 255}) {
		t.Fatalf("outside = %v", got)
	}
}

func TestPaintBorder(t *testing.T) {
	img, _ := paint(t, `<html><body>
		<div style="border: 2px solid blue; width: 50px; height: 20px"></div>
	</body></html>`, 100)
	blue := color.RGBA{0, 0, 255, 255}
	if got := img.RGBAAt(25, 0); got != blue {
		t.Fatalf("top border = %v", got)
	}
	if got := img.RGBAAt(0, 10); got != blue {
		t.Fatalf("left border = %v", got)
	}
	if got := img.RGBAAt(25, 10); got == blue {
		t.Fatal("interior should not be border color")
	}
}

func TestPaintTextChangesPixels(t *testing.T) {
	img, res := paint(t, `<html><body><p>Hello World</p></body></html>`, 200)
	runs := res.Runs()
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	// Some pixel within the first run must be non-white (black text).
	r := runs[0]
	found := false
	for y := int(r.Y); y < int(r.Y+r.Height()) && !found; y++ {
		for x := int(r.X); x < int(r.X+r.Width()); x++ {
			if img.RGBAAt(x, y) == (color.RGBA{0, 0, 0, 255}) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no text pixels painted inside run bounds")
	}
	// And pixels stay inside the run bounds (nothing paints above it).
	for x := 0; x < 200; x++ {
		if img.RGBAAt(x, int(r.Y)-2) != (color.RGBA{255, 255, 255, 255}) {
			t.Fatalf("paint above text line at x=%d", x)
		}
	}
}

func TestPaintColoredText(t *testing.T) {
	img, res := paint(t, `<html><body><p style="color: red">R</p></body></html>`, 100)
	r := res.Runs()[0]
	found := false
	for y := int(r.Y); y < int(r.Y+r.Height()); y++ {
		for x := int(r.X); x < int(r.X+r.Width()); x++ {
			if img.RGBAAt(x, y) == (color.RGBA{255, 0, 0, 255}) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no red pixels for red text")
	}
}

func TestPaintImagePlaceholder(t *testing.T) {
	img, _ := paint(t, `<html><body><img src="x.png" width="40" height="30"></body></html>`, 100)
	// Placeholder fill color somewhere inside.
	if got := img.RGBAAt(20, 15); got == (color.RGBA{255, 255, 255, 255}) {
		t.Fatalf("placeholder not painted: %v", got)
	}
}

func TestPaintMinHeight(t *testing.T) {
	doc := html.Parse(`<html><body></body></html>`)
	res := layout.Layout(doc, nil, layout.Viewport{Width: 50})
	img := Paint(res, Options{MinHeight: 120})
	if img.Bounds().Dy() != 120 {
		t.Fatalf("height = %d", img.Bounds().Dy())
	}
}

func TestPaintEmptyDocument(t *testing.T) {
	doc := html.Parse(``)
	res := layout.Layout(doc, nil, layout.Viewport{Width: 10})
	img := Paint(res, Options{})
	if img.Bounds().Dx() != 10 || img.Bounds().Dy() < 1 {
		t.Fatalf("bounds = %v", img.Bounds())
	}
}

func TestGlyphFallback(t *testing.T) {
	g := glyphFor('中')
	if g != ([5]byte{0x3E, 0x3E, 0x3E, 0x3E, 0x3E}) {
		t.Fatal("non-ASCII should greek")
	}
	if glyphFor('A') == glyphFor('B') {
		t.Fatal("distinct glyphs expected")
	}
	if glyphFor(' ') != ([5]byte{}) {
		t.Fatal("space should be empty")
	}
}

func TestBoldWiderThanRegular(t *testing.T) {
	imgN, resN := paint(t, `<html><body><p>H</p></body></html>`, 100)
	imgB, resB := paint(t, `<html><body><p><b>H</b></p></body></html>`, 100)
	countDark := func(img *image.RGBA, res *layout.Result) int {
		n := 0
		r := res.Runs()[0]
		for y := int(r.Y); y < int(r.Y+r.Height()+2); y++ {
			for x := int(r.X); x < int(r.X+r.Width()+4); x++ {
				if img.RGBAAt(x, y) == (color.RGBA{0, 0, 0, 255}) {
					n++
				}
			}
		}
		return n
	}
	if countDark(imgB, resB) <= countDark(imgN, resN) {
		t.Fatal("bold should paint more pixels")
	}
}

func TestPaintUnderline(t *testing.T) {
	img, res := paint(t, `<html><body><p><a href="/x">link</a></p></body></html>`, 200)
	r := res.Runs()[0]
	if !r.Underline {
		t.Fatal("run should be underlined")
	}
	// A contiguous rule exists just under the glyph block.
	y := int(r.Y+r.Height()) + 1
	dark := 0
	for x := int(r.X); x < int(r.X+r.Width()); x++ {
		c := img.RGBAAt(x, y)
		if c.R < 200 || c.G < 200 || c.B < 200 {
			dark++
		}
	}
	if dark < int(r.Width())-2 {
		t.Fatalf("underline pixels = %d of %d", dark, int(r.Width()))
	}
}

func TestPaintRealImage(t *testing.T) {
	// A 4x4 solid green source image painted into a 40x20 img box.
	src := image.NewRGBA(image.Rect(0, 0, 4, 4))
	green := color.RGBA{0, 200, 0, 255}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			src.SetRGBA(x, y, green)
		}
	}
	doc := html.Parse(`<html><body><img src="/logo.png" width="40" height="20"></body></html>`)
	res := layout.Layout(doc, css.StylerForDocument(doc), layout.Viewport{Width: 100})
	img := Paint(res, Options{Images: map[string]image.Image{"/logo.png": src}})
	if got := img.RGBAAt(20, 10); got != green {
		t.Fatalf("center = %v, want real image pixels", got)
	}
	// Without the map, the placeholder paints instead.
	img2 := Paint(res, Options{})
	if got := img2.RGBAAt(20, 10); got == green {
		t.Fatal("placeholder expected without decoded image")
	}
}
