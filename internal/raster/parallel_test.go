package raster

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"math/rand"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/layout"
)

// buildRandomPage builds a randomized page exercising every paint
// primitive: nested backgrounds, borders, replaced elements (with and
// without a decoded image), styled text with bold/italic/underline, and
// boxes that straddle arbitrary band boundaries.
func buildRandomPage(rng *rand.Rand) (string, map[string]image.Image) {
	var sb bytes.Buffer
	sb.WriteString(`<html><head><style>
.bordered{border:3px solid #334455;}
.bg0{background-color:#ffeedd;}
.bg1{background-color:#223344;color:#eeeeff;}
.bg2{background-color:#88cc44;}
em{font-style:italic;} strong{font-weight:bold;}
</style></head><body>`)
	images := make(map[string]image.Image)
	n := 8 + rng.Intn(8)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, `<div class="bg%d bordered"><p>block %d lorem ipsum dolor sit amet</p></div>`,
				rng.Intn(3), i)
		case 1:
			fmt.Fprintf(&sb, `<h%d>heading %d with <strong>bold</strong> and <em>italic</em></h%d>`,
				1+rng.Intn(3), i, 1+rng.Intn(3))
		case 2:
			src := fmt.Sprintf("img%d.png", i)
			w, h := 8+rng.Intn(40), 8+rng.Intn(40)
			if rng.Intn(2) == 0 {
				// Half the images decode; the rest paint placeholders.
				im := image.NewRGBA(image.Rect(0, 0, w, h))
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						im.SetRGBA(x, y, color.RGBA{uint8(x * 7), uint8(y * 5), uint8(i * 31), 255})
					}
				}
				images[src] = im
			}
			fmt.Fprintf(&sb, `<img src="%s" width="%d" height="%d">`, src, w, h)
		case 3:
			fmt.Fprintf(&sb, `<p>paragraph %d with <a href="/x">an underlined link</a> and trailing text</p>`, i)
		case 4:
			fmt.Fprintf(&sb, `<ul><li>item a %d</li><li>item b</li><li class="bg2">item c</li></ul>`, i)
		}
	}
	sb.WriteString("</body></html>")
	return sb.String(), images
}

func layoutRandomPage(t *testing.T, rng *rand.Rand) (*layout.Result, map[string]image.Image) {
	t.Helper()
	src, images := buildRandomPage(rng)
	doc := html.Tidy(src)
	styler := css.StylerForDocument(doc)
	res := layout.Layout(doc, styler, layout.Viewport{Width: 320 + rng.Intn(700)})
	return res, images
}

// TestPaintParallelMatchesSerial is the golden/property guard for the
// band-parallel rasterizer: for randomized layouts and every worker
// count, the parallel framebuffer must be byte-identical to the serial
// one.
func TestPaintParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		res, images := layoutRandomPage(t, rng)
		for _, antialias := range []bool{false, true} {
			base := Options{Images: images, Antialias: antialias, MinHeight: 64}
			serialOpts := base
			serialOpts.Workers = 1
			serial := Paint(res, serialOpts)
			for _, workers := range []int{2, 3, 4, 7, 16} {
				parOpts := base
				parOpts.Workers = workers
				parallel := Paint(res, parOpts)
				if serial.Bounds() != parallel.Bounds() {
					t.Fatalf("trial %d workers %d: bounds %v != %v",
						trial, workers, parallel.Bounds(), serial.Bounds())
				}
				if !bytes.Equal(serial.Pix, parallel.Pix) {
					diff := firstPixelDiff(serial, parallel)
					t.Fatalf("trial %d workers %d antialias %v: framebuffer differs at %v",
						trial, workers, antialias, diff)
				}
			}
		}
	}
}

// TestPaintParallelSkipText covers the partial-CSS (background-only)
// path used by §3.3 pre-rendering.
func TestPaintParallelSkipText(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, images := layoutRandomPage(t, rng)
	serial := Paint(res, Options{Images: images, SkipText: true, Workers: 1})
	parallel := Paint(res, Options{Images: images, SkipText: true, Workers: 8})
	if !bytes.Equal(serial.Pix, parallel.Pix) {
		t.Fatalf("SkipText framebuffer differs at %v", firstPixelDiff(serial, parallel))
	}
}

// TestPaintDefaultWorkersIdentical checks the default (Workers == 0,
// GOMAXPROCS bands) path — what the proxy actually runs — against
// serial.
func TestPaintDefaultWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	res, images := layoutRandomPage(t, rng)
	serial := Paint(res, Options{Images: images, Antialias: true, Workers: 1})
	def := Paint(res, Options{Images: images, Antialias: true})
	if !bytes.Equal(serial.Pix, def.Pix) {
		t.Fatalf("default-workers framebuffer differs at %v", firstPixelDiff(serial, def))
	}
}

func firstPixelDiff(a, b *image.RGBA) image.Point {
	bounds := a.Bounds()
	for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
		for x := bounds.Min.X; x < bounds.Max.X; x++ {
			if a.RGBAAt(x, y) != b.RGBAAt(x, y) {
				return image.Pt(x, y)
			}
		}
	}
	return image.Pt(-1, -1)
}
