package raster

import (
	"strings"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/layout"
)

func benchLayout(b *testing.B) *layout.Result {
	b.Helper()
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	for i := 0; i < 40; i++ {
		sb.WriteString(`<div style="background-color: #dde; border: 1px solid navy; padding: 4px">
<b>Heading text</b> and a longer run of body copy that wraps across the container width.
<img src="x.gif" width="60" height="40"></div>`)
	}
	sb.WriteString("</body></html>")
	doc := html.Parse(sb.String())
	return layout.Layout(doc, css.StylerForDocument(doc), layout.Viewport{Width: 1024})
}

func BenchmarkPaint(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Paint(res, Options{}) == nil {
			b.Fatal("nil image")
		}
	}
}

func BenchmarkPaintSkipText(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paint(res, Options{SkipText: true})
	}
}

func BenchmarkPaintAntialias(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paint(res, Options{Antialias: true})
	}
}
