package raster

import (
	"image"
	"strings"
	"testing"

	"msite/internal/css"
	"msite/internal/html"
	"msite/internal/layout"
)

func benchLayout(b *testing.B) *layout.Result {
	b.Helper()
	var sb strings.Builder
	sb.WriteString(`<html><body>`)
	for i := 0; i < 40; i++ {
		sb.WriteString(`<div style="background-color: #dde; border: 1px solid navy; padding: 4px">
<b>Heading text</b> and a longer run of body copy that wraps across the container width.
<img src="x.gif" width="60" height="40"></div>`)
	}
	sb.WriteString("</body></html>")
	doc := html.Parse(sb.String())
	return layout.Layout(doc, css.StylerForDocument(doc), layout.Viewport{Width: 1024})
}

func BenchmarkPaint(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Paint(res, Options{}) == nil {
			b.Fatal("nil image")
		}
	}
}

// BenchmarkPaintPooled is the steady-state serving profile: the frame
// returns to the pool after each paint, the way the snapshot pipeline
// releases it after encoding. Compare against BenchmarkPaint (which
// keeps every frame) to see the pool's effect on B/op.
func BenchmarkPaintPooled(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := Paint(res, Options{})
		if img == nil {
			b.Fatal("nil image")
		}
		Release(img)
	}
}

// BenchmarkStreamPaint is StreamPaint with a consuming band callback —
// the progressive pipeline's paint cost.
func BenchmarkStreamPaint(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := StreamPaint(res, Options{}, func(*image.RGBA) {})
		Release(img)
	}
}

func BenchmarkPaintSkipText(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paint(res, Options{SkipText: true})
	}
}

func BenchmarkPaintAntialias(b *testing.B) {
	res := benchLayout(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paint(res, Options{Antialias: true})
	}
}
