package raster

import (
	"image"
	"runtime"
	"sync"

	"msite/internal/layout"
)

// BandFunc consumes one painted horizontal band of the frame. The view
// is a clipped sub-image of the full frame: earlier bands' rows remain
// valid for the consumer (an incremental encoder can read back from the
// top of the frame), but rows below the view are still being painted and
// must not be touched.
type BandFunc func(view *image.RGBA)

// StreamPaint rasterizes like Paint but hands each horizontal band to
// onBand as soon as it is fully painted, in top-to-bottom order, while
// later bands are still being painted by the worker set. This is the
// interleaving stage of the progressive snapshot pipeline: the encoder
// consumes band N while the rasterizer paints band N+1, so encode time
// hides behind paint time instead of following it.
//
// The returned frame is byte-identical to Paint with the same Options —
// the band partition, clipped painting, and per-row antialias jitter are
// exactly Paint's (the parity property the streaming snapshot's
// full-fidelity upgrade depends on). A nil onBand degenerates to Paint.
func StreamPaint(res *layout.Result, opts Options, onBand BandFunc) *image.RGBA {
	if onBand == nil {
		return Paint(res, opts)
	}
	img := newFrame(res, opts)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := img.Bounds()
	if workers > b.Dy() {
		workers = b.Dy()
	}
	if workers < 1 {
		workers = 1
	}

	var scaled map[*layout.Box]*image.RGBA
	if res.Root != nil {
		scaled = prescaleImages(res.Root, opts, nil)
	}

	// The same row partition as forEachBand: band i covers rows
	// [i*h/workers, (i+1)*h/workers).
	h := b.Dy()
	views := make([]*image.RGBA, workers)
	done := make([]chan struct{}, workers)
	for i := 0; i < workers; i++ {
		y0 := b.Min.Y + i*h/workers
		y1 := b.Min.Y + (i+1)*h/workers
		views[i] = img.SubImage(image.Rect(b.Min.X, y0, b.Max.X, y1)).(*image.RGBA)
		done[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			view := views[i]
			if res.Root != nil {
				paintBox(view, res.Root, opts, scaled)
			}
			if opts.Antialias {
				applyAntialiasJitter(view)
			}
			close(done[i])
		}(i)
	}
	// Deliver strictly in order: band i+1 may finish first, but the
	// consumer sees a top-to-bottom scanline stream.
	for i := 0; i < workers; i++ {
		<-done[i]
		onBand(views[i])
	}
	wg.Wait()
	releaseScaled(scaled)
	return img
}
