package session

import (
	"bytes"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"msite/internal/obs"
)

func newTestManager(t *testing.T) (*Manager, *clock) {
	t.Helper()
	clk := &clock{now: time.Unix(1_700_000_000, 0)}
	m, err := NewManagerWithClock(t.TempDir(), time.Hour, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	return m, clk
}

type clock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestCreateAndGet(t *testing.T) {
	m, _ := newTestManager(t)
	s, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ID) != 32 {
		t.Fatalf("id = %q", s.ID)
	}
	if fi, err := os.Stat(s.Dir); err != nil || !fi.IsDir() {
		t.Fatalf("session dir missing: %v", err)
	}
	got, err := m.Get(s.ID)
	if err != nil || got != s {
		t.Fatalf("get = %v, %v", got, err)
	}
	if _, err := m.Get("nope"); err != ErrNotFound {
		t.Fatalf("missing = %v", err)
	}
}

func TestUniqueIDs(t *testing.T) {
	m, _ := newTestManager(t)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		s, err := m.Create()
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.ID] {
			t.Fatal("duplicate session id")
		}
		seen[s.ID] = true
	}
}

func TestSubdirectories(t *testing.T) {
	m, _ := newTestManager(t)
	s, _ := m.Create()
	pages, err := s.SubpageDir()
	if err != nil {
		t.Fatal(err)
	}
	images, err := s.ImageDir()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(pages) != s.Dir || filepath.Dir(images) != s.Dir {
		t.Fatal("subdirs not under session dir")
	}
	// Protected: 0700.
	fi, _ := os.Stat(pages)
	if fi.Mode().Perm() != 0o700 {
		t.Fatalf("perm = %v", fi.Mode().Perm())
	}
}

func TestExpiryOnGet(t *testing.T) {
	m, clk := newTestManager(t)
	s, _ := m.Create()
	clk.Advance(2 * time.Hour)
	if _, err := m.Get(s.ID); err != ErrNotFound {
		t.Fatalf("expired get = %v", err)
	}
	if _, err := os.Stat(s.Dir); !os.IsNotExist(err) {
		t.Fatal("expired session dir not removed")
	}
}

func TestTouchExtendsLife(t *testing.T) {
	m, clk := newTestManager(t)
	s, _ := m.Create()
	for i := 0; i < 3; i++ {
		clk.Advance(50 * time.Minute)
		if _, err := m.Get(s.ID); err != nil {
			t.Fatalf("refreshed session expired at step %d", i)
		}
	}
}

func TestGC(t *testing.T) {
	m, clk := newTestManager(t)
	s1, _ := m.Create()
	clk.Advance(30 * time.Minute)
	s2, _ := m.Create()
	clk.Advance(45 * time.Minute) // s1 idle 75min > 60, s2 idle 45
	if n := m.GC(); n != 1 {
		t.Fatalf("gc = %d", n)
	}
	if _, err := m.Get(s2.ID); err != nil {
		t.Fatal("live session collected")
	}
	if _, err := os.Stat(s1.Dir); !os.IsNotExist(err) {
		t.Fatal("collected dir remains")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestDelete(t *testing.T) {
	m, _ := newTestManager(t)
	s, _ := m.Create()
	if err := m.Delete(s.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(s.ID); err != ErrNotFound {
		t.Fatalf("double delete = %v", err)
	}
}

func TestAuthStorage(t *testing.T) {
	m, _ := newTestManager(t)
	s, _ := m.Create()
	if _, ok := s.Auth("example.com"); ok {
		t.Fatal("unexpected creds")
	}
	s.SetAuth("example.com", Credentials{User: "u", Pass: "p"})
	c, ok := s.Auth("example.com")
	if !ok || c.User != "u" || c.Pass != "p" {
		t.Fatalf("creds = %+v, %v", c, ok)
	}
	// Separate sessions do not share credentials (§3.3: "Authentication
	// information is stored and maintained separately across users").
	s2, _ := m.Create()
	if _, ok := s2.Auth("example.com"); ok {
		t.Fatal("creds leaked across sessions")
	}
}

func TestValues(t *testing.T) {
	m, _ := newTestManager(t)
	s, _ := m.Create()
	s.Set("entry", "/forum")
	if v, ok := s.Get("entry"); !ok || v != "/forum" {
		t.Fatalf("value = %q %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing value present")
	}
}

func TestClearCookies(t *testing.T) {
	m, _ := newTestManager(t)
	s, _ := m.Create()
	old := s.Jar
	if err := s.ClearCookies(); err != nil {
		t.Fatal(err)
	}
	if s.Jar == old {
		t.Fatal("jar not replaced")
	}
}

func TestEnsureIssuesCookie(t *testing.T) {
	m, _ := newTestManager(t)
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	s, err := m.Ensure(w, r)
	if err != nil {
		t.Fatal(err)
	}
	cookies := w.Result().Cookies()
	if len(cookies) != 1 || cookies[0].Name != CookieName || cookies[0].Value != s.ID {
		t.Fatalf("cookies = %v", cookies)
	}
	if !cookies[0].HttpOnly {
		t.Fatal("cookie should be HttpOnly")
	}

	// Second request with the cookie reuses the session.
	r2 := httptest.NewRequest(http.MethodGet, "/", nil)
	r2.AddCookie(cookies[0])
	w2 := httptest.NewRecorder()
	s2, err := m.Ensure(w2, r2)
	if err != nil || s2 != s {
		t.Fatalf("reuse failed: %v %v", s2, err)
	}
	if len(w2.Result().Cookies()) != 0 {
		t.Fatal("no new cookie should be set on reuse")
	}
}

func TestEnsureReplacesStaleCookie(t *testing.T) {
	m, _ := newTestManager(t)
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.AddCookie(&http.Cookie{Name: CookieName, Value: "stale"})
	w := httptest.NewRecorder()
	s, err := m.Ensure(w, r)
	if err != nil || s == nil {
		t.Fatalf("ensure = %v %v", s, err)
	}
	if len(w.Result().Cookies()) != 1 {
		t.Fatal("new cookie not issued for stale id")
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(""); err == nil {
		t.Fatal("empty root should fail")
	}
}

func TestConcurrentSessions(t *testing.T) {
	m, _ := newTestManager(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := m.Create()
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 20; j++ {
				if _, err := m.Get(s.ID); err != nil {
					t.Error(err)
				}
				s.Set("k", "v")
				s.SetAuth("h", Credentials{User: "u"})
			}
		}()
	}
	wg.Wait()
	if m.Len() != 16 {
		t.Fatalf("len = %d", m.Len())
	}
}

// TestCleanupErrorsLoggedAndCounted: a failing session-directory
// teardown must not be silently swallowed — it is logged, counted on the
// manager, and surfaced as msite_session_cleanup_errors_total.
func TestCleanupErrorsLoggedAndCounted(t *testing.T) {
	orig := removeAll
	fail := true
	removeAll = func(path string) error {
		if fail {
			return errors.New("injected teardown failure")
		}
		return orig(path)
	}
	defer func() { removeAll = orig }()

	m, clk := newTestManager(t)
	reg := obs.NewRegistry()
	m.InstrumentObs(reg)
	var logs bytes.Buffer
	m.SetLogger(slog.New(slog.NewTextHandler(&logs, nil)))

	// Expiry path (Get).
	s, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Hour)
	if _, err := m.Get(s.ID); err != ErrNotFound {
		t.Fatalf("Get expired = %v", err)
	}
	// GC path.
	s2, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Hour)
	if n := m.GC(); n != 1 {
		t.Fatalf("GC removed %d sessions; want 1", n)
	}
	_ = s2

	if got := m.CleanupErrors(); got != 2 {
		t.Fatalf("CleanupErrors = %d; want 2", got)
	}
	c, ok := reg.Snapshot().Counter("msite_session_cleanup_errors_total")
	if !ok || c.Value != 2 {
		t.Fatalf("msite_session_cleanup_errors_total = %v (ok=%v); want 2", c, ok)
	}
	if !strings.Contains(logs.String(), "injected teardown failure") {
		t.Fatalf("teardown failure not logged: %q", logs.String())
	}

	// Successful teardowns stay uncounted.
	fail = false
	s3, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(s3.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.CleanupErrors(); got != 2 {
		t.Fatalf("CleanupErrors after clean delete = %d; want 2", got)
	}
}
