// Package session implements m.Site's multi-session state management
// (§3.2): each mobile client is issued a session cookie; all files
// generated during the session live under a protected per-user
// subdirectory; the proxy keeps a per-user cookie jar so it can fetch
// authenticated origin content on the client's behalf; and HTTP
// credentials are stored and replayed per user. This is the piece that
// lets a single lightweight proxy replace one browser instance per
// client.
package session

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/cookiejar"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/obs"
)

// removeAll is swapped out by tests to exercise teardown failures.
var removeAll = os.RemoveAll

// CookieName is the proxy session cookie.
const CookieName = "msite_session"

// DefaultTTL is how long an idle session survives before GC.
const DefaultTTL = 2 * time.Hour

// ErrNotFound is returned for unknown or expired session IDs.
var ErrNotFound = errors.New("session: not found")

// ErrTooManySessions is returned by Create/Ensure when the manager's
// session cap (-max-sessions) is reached: session state is real memory
// and disk, so creation itself must be sheddable under overload.
var ErrTooManySessions = errors.New("session: too many live sessions")

// Credentials is one stored HTTP authentication credential.
type Credentials struct {
	User string
	Pass string
}

// Session is one mobile client's server-side state.
type Session struct {
	// ID is the random session identifier carried in the cookie.
	ID string
	// Dir is the session's protected subdirectory; generated subpages
	// and per-user images are written beneath it.
	Dir string
	// Jar holds the origin cookies the proxy presents on the client's
	// behalf.
	Jar http.CookieJar

	mu       sync.Mutex
	auth     map[string]Credentials // keyed by host
	values   map[string]string
	lastSeen time.Time
	personal bool
}

// MarkPersonalized flags the session as carrying user-specific origin
// state (stored HTTP credentials, a marshaled form login). The proxy
// refuses to coalesce a personalized session's adaptation with other
// sessions' — their origin content may differ.
func (s *Session) MarkPersonalized() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.personal = true
}

// Personalized reports whether the session carries user-specific origin
// state.
func (s *Session) Personalized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.personal
}

// SubpageDir returns the directory generated subpages are written to,
// creating it if needed.
func (s *Session) SubpageDir() (string, error) {
	return s.ensureDir("pages")
}

// ImageDir returns the directory pre-rendered per-user images are written
// to, creating it if needed.
func (s *Session) ImageDir() (string, error) {
	return s.ensureDir("images")
}

func (s *Session) ensureDir(sub string) (string, error) {
	dir := filepath.Join(s.Dir, sub)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return "", fmt.Errorf("session: creating %s dir: %w", sub, err)
	}
	return dir, nil
}

// SetAuth stores HTTP credentials for a host.
func (s *Session) SetAuth(host string, c Credentials) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auth[host] = c
}

// Auth returns the stored credentials for a host.
func (s *Session) Auth(host string) (Credentials, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.auth[host]
	return c, ok
}

// Set stores an arbitrary session value.
func (s *Session) Set(key, val string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = val
}

// Get returns an arbitrary session value.
func (s *Session) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[key]
	return v, ok
}

// CookieJar returns the session's current origin cookie jar under the
// session lock, so concurrent fetch workers never race a ClearCookies
// jar swap.
func (s *Session) CookieJar() http.CookieJar {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Jar
}

// ClearCookies discards the session's origin cookie jar — the mechanism
// behind the paper's "replacement of a logout button with a get
// parameter, which allows cookies to be cleared on the proxy".
func (s *Session) ClearCookies() error {
	jar, err := cookiejar.New(nil)
	if err != nil {
		return fmt.Errorf("session: resetting cookie jar: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Jar = jar
	return nil
}

// Manager creates, finds, and expires sessions. Safe for concurrent use.
type Manager struct {
	root  string
	ttl   time.Duration
	clock func() time.Time

	mu       sync.Mutex
	sessions map[string]*Session
	limit    int // 0 = uncapped

	// onExpire callbacks run (outside the manager lock) whenever a
	// session leaves the manager — idle expiry in Get, explicit Delete,
	// or a GC pass. The proxy uses this to release per-session
	// adaptation state so long-running deployments don't leak it.
	expireMu sync.Mutex
	onExpire []func(id string)

	logger         atomic.Pointer[slog.Logger]
	cleanupErrs    atomic.Uint64
	obsCleanupErrs atomic.Pointer[obs.Counter]
}

// SetLogger directs session teardown diagnostics to l. Without one, the
// default slog logger is used.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l != nil {
		m.logger.Store(l)
	}
}

// cleanup removes a session directory. Failures are not fatal — the
// session is already gone from the manager — but they leak disk, so they
// are logged and counted (msite_session_cleanup_errors_total) instead of
// being silently discarded.
func (m *Manager) cleanup(id, dir string) {
	err := removeAll(dir)
	if err == nil {
		return
	}
	m.cleanupErrs.Add(1)
	if c := m.obsCleanupErrs.Load(); c != nil {
		c.Inc()
	}
	l := m.logger.Load()
	if l == nil {
		l = slog.Default()
	}
	l.Error("session: removing session dir", "session", id, "dir", dir, "err", err)
}

// CleanupErrors returns how many session-directory teardowns have failed.
func (m *Manager) CleanupErrors() uint64 { return m.cleanupErrs.Load() }

// OnExpire registers fn to run with the session ID whenever a session is
// expired, deleted, or garbage-collected. Callbacks run outside the
// manager lock; they must not block for long.
func (m *Manager) OnExpire(fn func(id string)) {
	m.expireMu.Lock()
	defer m.expireMu.Unlock()
	m.onExpire = append(m.onExpire, fn)
}

// notifyExpired invokes every OnExpire callback for each removed id.
func (m *Manager) notifyExpired(ids ...string) {
	m.expireMu.Lock()
	fns := make([]func(string), len(m.onExpire))
	copy(fns, m.onExpire)
	m.expireMu.Unlock()
	for _, id := range ids {
		for _, fn := range fns {
			fn(id)
		}
	}
}

// NewManager returns a Manager writing session directories under root.
func NewManager(root string) (*Manager, error) {
	return NewManagerWithClock(root, DefaultTTL, time.Now)
}

// NewManagerWithClock allows a custom TTL and clock.
func NewManagerWithClock(root string, ttl time.Duration, clock func() time.Time) (*Manager, error) {
	if root == "" {
		return nil, errors.New("session: empty root directory")
	}
	if err := os.MkdirAll(root, 0o700); err != nil {
		return nil, fmt.Errorf("session: creating root: %w", err)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Manager{
		root:     root,
		ttl:      ttl,
		clock:    clock,
		sessions: make(map[string]*Session),
	}, nil
}

// InstrumentObs registers the manager's live-session gauge
// (msite_sessions_live) and the teardown-failure counter
// (msite_session_cleanup_errors_total) on reg. Idempotent; safe to call
// for managers shared across several proxies.
func (m *Manager) InstrumentObs(reg *obs.Registry) {
	reg.GaugeFunc("msite_sessions_live", func() float64 { return float64(m.Len()) })
	m.obsCleanupErrs.Store(reg.Counter("msite_session_cleanup_errors_total"))
}

// SetLimit caps the number of live sessions (the -max-sessions knob);
// Create and Ensure return ErrTooManySessions past it. n <= 0 removes
// the cap.
func (m *Manager) SetLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		n = 0
	}
	m.limit = n
}

// Create makes a fresh session with its own directory and cookie jar.
func (m *Manager) Create() (*Session, error) {
	m.mu.Lock()
	if m.limit > 0 && len(m.sessions) >= m.limit {
		m.mu.Unlock()
		return nil, ErrTooManySessions
	}
	m.mu.Unlock()
	id, err := newID()
	if err != nil {
		return nil, err
	}
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, fmt.Errorf("session: creating cookie jar: %w", err)
	}
	dir := filepath.Join(m.root, id)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("session: creating session dir: %w", err)
	}
	s := &Session{
		ID:       id,
		Dir:      dir,
		Jar:      jar,
		auth:     make(map[string]Credentials),
		values:   make(map[string]string),
		lastSeen: m.clock(),
	}
	m.mu.Lock()
	if m.limit > 0 && len(m.sessions) >= m.limit {
		// Re-check under the insert lock: concurrent Creates may have
		// filled the remaining room while the directory was being made.
		m.mu.Unlock()
		m.cleanup(id, dir)
		return nil, ErrTooManySessions
	}
	m.sessions[id] = s
	m.mu.Unlock()
	return s, nil
}

// Get returns the live session for id, refreshing its idle timer.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	s.mu.Lock()
	expired := m.clock().Sub(s.lastSeen) > m.ttl
	if !expired {
		s.lastSeen = m.clock()
	}
	s.mu.Unlock()
	if expired {
		delete(m.sessions, id)
		m.mu.Unlock()
		m.cleanup(id, s.Dir)
		m.notifyExpired(id)
		m.mu.Lock() // re-acquire for the deferred unlock
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete removes a session and its directory.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	m.notifyExpired(id)
	if err := os.RemoveAll(s.Dir); err != nil {
		return fmt.Errorf("session: removing dir: %w", err)
	}
	return nil
}

// GC removes idle sessions and their directories, returning the count.
func (m *Manager) GC() int {
	m.mu.Lock()
	now := m.clock()
	var stale []*Session
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastSeen) > m.ttl
		s.mu.Unlock()
		if idle {
			stale = append(stale, s)
			delete(m.sessions, id)
		}
	}
	m.mu.Unlock()
	for _, s := range stale {
		m.cleanup(s.ID, s.Dir)
		m.notifyExpired(s.ID)
	}
	return len(stale)
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// FromRequest returns the session identified by the request's cookie.
func (m *Manager) FromRequest(r *http.Request) (*Session, error) {
	c, err := r.Cookie(CookieName)
	if err != nil {
		return nil, ErrNotFound
	}
	return m.Get(c.Value)
}

// Ensure returns the request's session, creating one (and setting the
// cookie on w) when the client has none — "Upon starting a mobile session
// for the first time, the mobile browser is issued a session cookie"
// (§3.2).
func (m *Manager) Ensure(w http.ResponseWriter, r *http.Request) (*Session, error) {
	if s, err := m.FromRequest(r); err == nil {
		return s, nil
	}
	s, err := m.Create()
	if err != nil {
		return nil, err
	}
	http.SetCookie(w, &http.Cookie{
		Name:     CookieName,
		Value:    s.ID,
		Path:     "/",
		HttpOnly: true,
	})
	return s, nil
}

func newID() (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("session: generating id: %w", err)
	}
	return hex.EncodeToString(buf[:]), nil
}
