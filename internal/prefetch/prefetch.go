// Package prefetch implements speculative pre-adaptation: a background
// crawler that walks the origin link graph from each configured site's
// entry page, ranks sites by observed demand plus link proximity, and
// pre-builds or revalidates their bundles through the proxy's coalesced
// build path — under the admission controller's background lane, so the
// crawler never competes with live traffic for capacity.
//
// Freshness is conditional: the crawler stores each origin page's ETag
// and Last-Modified and revalidates with conditional GETs. A 304 proves
// the adapted bundle still matches the origin, so its TTL is renewed in
// place (a store touch, not a rebuild); only an origin that actually
// changed pays for a pipeline run.
package prefetch

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math/rand"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"msite/internal/admission"
	"msite/internal/fetch"
	"msite/internal/html"

	"msite/internal/dom"
	"msite/internal/obs"
	"msite/internal/proxy"
)

// Site is the per-site surface the crawler drives; *proxy.Proxy
// implements it. The indirection keeps the crawler testable against
// fakes without standing up full adaptation pipelines.
type Site interface {
	// SiteName identifies the site (the spec name).
	SiteName() string
	// Origin is the entry-page URL — the crawl root and the URL
	// revalidated against the bundle's stored validator.
	Origin() string
	// PrefetchBuild builds the site's bundle off the live path; force
	// true bypasses the existing bundle (the origin-changed rebuild).
	PrefetchBuild(ctx context.Context, force bool) (bool, error)
	// BundleValidator returns the origin validators captured by the
	// persisted bundle's entry fetch (zero when unknown).
	BundleValidator() proxy.BundleValidator
	// TouchBundle renews the persisted bundle's TTL after a 304.
	TouchBundle() bool
	// PrefetchFetcher returns a fetcher wired like the build
	// pipeline's, for crawl and revalidation traffic.
	PrefetchFetcher() *fetch.Fetcher
}

// Config tunes the crawler. Zero values take the defaults noted on
// each field.
type Config struct {
	// TopN caps how many sites are built or revalidated per cycle
	// (-prefetch-top-n, default 4).
	TopN int
	// Interval is the nominal gap between refresh cycles
	// (-prefetch-interval, default 30s). Start jitters each wait by
	// ±20% so a fleet of proxies doesn't thundering-herd one origin.
	Interval time.Duration
	// Depth is how many links deep the crawler walks from each entry
	// page when ranking by proximity (-prefetch-depth, default 1).
	Depth int
	// MaxPages bounds origin page fetches per crawl cycle (default 32).
	MaxPages int
	// Obs receives the msite_prefetch_* metrics. Nil disables them.
	Obs *obs.Registry
	// Logger, when set, gets a debug line per cycle.
	Logger *slog.Logger
	// StateFile, when set, persists the decayed demand ranking across
	// restarts: scores are snapshotted there after each cycle and on
	// Close, and reloaded by New — so a restarted crawler resumes
	// ranking where it left off instead of re-learning from zero. Core
	// points it into the store directory.
	StateFile string
}

func (c Config) withDefaults() Config {
	if c.TopN <= 0 {
		c.TopN = 4
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Depth <= 0 {
		c.Depth = 1
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 32
	}
	return c
}

// pageEntry caches one crawled origin page across cycles: its
// validators for the next conditional GET and the outbound links parsed
// from the last 200. A 304 reuses the cached links, so a steady-state
// crawl moves almost no origin bytes.
type pageEntry struct {
	etag         string
	lastModified string
	links        []string
}

// CycleReport is what one RunCycle did, for tests, benches, and logs.
type CycleReport struct {
	// Crawled counts origin fetches the link walk performed (conditional
	// or not); CrawlNotModified of them came back 304.
	Crawled          int
	CrawlNotModified int
	// Targets is the ranked top-N selection, best first.
	Targets []string
	// Built lists sites whose pipeline ran; Refreshed is the subset
	// rebuilt because revalidation showed the origin changed.
	Built     []string
	Refreshed []string
	// NotModified lists sites whose bundle was TTL-touched after a 304.
	NotModified []string
	// SkippedBusy lists sites skipped because the background admission
	// lane had no spare capacity.
	SkippedBusy []string
	// Errors maps site name to the failure that ended its refresh.
	Errors map[string]string
}

// Crawler is the background pre-adaptation engine. Create with New,
// point at sites with SetSites, feed demand with RecordHit (wired as
// the proxy's Demand callback), then Start — or call RunCycle directly
// for deterministic tests and benches.
type Crawler struct {
	cfg Config

	mu     sync.Mutex
	sites  []Site
	demand map[string]float64
	pages  map[string]*pageEntry

	queue *obs.Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a crawler; it does nothing until Start (or RunCycle). With
// a StateFile, the previous process's demand ranking is reloaded here.
func New(cfg Config) *Crawler {
	c := &Crawler{
		cfg:    cfg.withDefaults(),
		demand: make(map[string]float64),
		pages:  make(map[string]*pageEntry),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if c.cfg.Obs != nil {
		c.queue = c.cfg.Obs.Gauge("msite_prefetch_queue")
	}
	c.loadDemand()
	return c
}

// demandState is the StateFile's JSON layout.
type demandState struct {
	Demand  map[string]float64 `json:"demand"`
	SavedAt time.Time          `json:"saved_at"`
}

// loadDemand seeds the demand map from the StateFile. A missing or
// corrupt file is a cold start, not an error.
func (c *Crawler) loadDemand() {
	if c.cfg.StateFile == "" {
		return
	}
	data, err := os.ReadFile(c.cfg.StateFile)
	if err != nil {
		return
	}
	var st demandState
	if json.Unmarshal(data, &st) != nil {
		return
	}
	c.mu.Lock()
	for name, d := range st.Demand {
		if d >= 0.01 {
			c.demand[name] = d
		}
	}
	c.mu.Unlock()
	if c.cfg.Logger != nil {
		c.cfg.Logger.Debug("prefetch demand reloaded",
			"sites", len(st.Demand), "saved_at", st.SavedAt)
	}
}

// saveDemand snapshots the current (already-decayed) demand scores to
// the StateFile, atomically (tmp + rename) so a crash mid-write leaves
// the previous snapshot intact.
func (c *Crawler) saveDemand() {
	if c.cfg.StateFile == "" {
		return
	}
	c.mu.Lock()
	st := demandState{Demand: make(map[string]float64, len(c.demand)), SavedAt: time.Now()}
	for name, d := range c.demand {
		st.Demand[name] = d
	}
	c.mu.Unlock()
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	tmp := c.cfg.StateFile + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, c.cfg.StateFile)
}

// SetSites replaces the crawl targets. Typically called once at boot,
// after the proxies exist.
func (c *Crawler) SetSites(sites []Site) {
	c.mu.Lock()
	c.sites = append([]Site(nil), sites...)
	c.mu.Unlock()
}

// RecordHit feeds live demand: the proxy calls it on every entry and
// subpage serve. It is cheap and non-blocking (one mutexed map add) as
// Config.Demand requires.
func (c *Crawler) RecordHit(site string) {
	c.mu.Lock()
	c.demand[site]++
	c.mu.Unlock()
}

// Start launches the background refresh loop. Each wait is the
// configured interval jittered ±20%. Close stops the loop.
func (c *Crawler) Start() {
	c.startOnce.Do(func() {
		go c.loop()
	})
}

// Close stops the background loop, waits for an in-flight cycle to
// finish, and snapshots the demand ranking. Safe to call without
// Start, and more than once.
func (c *Crawler) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to wait for
	<-c.done
	c.saveDemand()
}

func (c *Crawler) loop() {
	defer close(c.done)
	for {
		wait := jitter(c.cfg.Interval)
		select {
		case <-c.stop:
			return
		case <-time.After(wait):
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Interval)
		rep := c.RunCycle(ctx)
		cancel()
		if c.cfg.Logger != nil {
			c.cfg.Logger.Debug("prefetch cycle",
				"crawled", rep.Crawled,
				"crawl_304", rep.CrawlNotModified,
				"targets", len(rep.Targets),
				"built", len(rep.Built),
				"refreshed", len(rep.Refreshed),
				"not_modified", len(rep.NotModified),
				"skipped_busy", len(rep.SkippedBusy),
				"errors", len(rep.Errors))
		}
	}
}

// jitter spreads d by ±20% so parallel deployments don't align their
// origin probes.
func jitter(d time.Duration) time.Duration {
	f := 0.8 + 0.4*rand.Float64()
	return time.Duration(float64(d) * f)
}

// RunCycle performs one full crawl-rank-refresh pass and reports what
// happened. Exported so benches and tests can drive cycles
// deterministically instead of waiting on the jittered ticker.
func (c *Crawler) RunCycle(ctx context.Context) CycleReport {
	rep := CycleReport{Errors: map[string]string{}}

	c.mu.Lock()
	sites := append([]Site(nil), c.sites...)
	demand := make(map[string]float64, len(c.demand))
	for name, d := range c.demand {
		demand[name] = d
		// Decay: each cycle halves history, so a page hot an hour ago
		// doesn't outrank a page hot now.
		if d /= 2; d < 0.01 {
			delete(c.demand, name)
		} else {
			c.demand[name] = d
		}
	}
	c.mu.Unlock()

	if len(sites) == 0 {
		return rep
	}

	depth := c.crawl(ctx, sites, demand, &rep)
	targets := c.rank(sites, demand, depth)
	rep.Targets = names(targets)

	if c.queue != nil {
		c.queue.Set(float64(len(targets)))
	}
	for i, s := range targets {
		if ctx.Err() != nil {
			break
		}
		c.refresh(ctx, s, &rep)
		if c.queue != nil {
			c.queue.Set(float64(len(targets) - i - 1))
		}
	}
	if c.queue != nil {
		c.queue.Set(0)
	}
	c.saveDemand()
	return rep
}

// crawl walks the origin link graph breadth-first from the entry page
// of every site with live demand (every site, when nothing has demand
// yet — the cold-boot bootstrap) and returns the minimal link depth at
// which each configured origin URL was seen. Fetches are conditional
// against the per-page validator cache; only hosts belonging to
// configured origins are followed.
func (c *Crawler) crawl(ctx context.Context, sites []Site, demand map[string]float64, rep *CycleReport) map[string]int {
	originOf := make(map[string]string, len(sites)) // normalized origin URL -> site name
	hosts := make(map[string]bool, len(sites))
	for _, s := range sites {
		u := normalizeURL(s.Origin())
		originOf[u] = s.SiteName()
		if p, err := url.Parse(u); err == nil {
			hosts[p.Host] = true
		}
	}

	type item struct {
		url   string
		depth int
	}
	var queue []item
	seen := make(map[string]bool)
	bootstrap := len(demand) == 0
	var fetcher *fetch.Fetcher
	for _, s := range sites {
		if bootstrap || demand[s.SiteName()] > 0 {
			u := normalizeURL(s.Origin())
			if !seen[u] {
				seen[u] = true
				queue = append(queue, item{u, 0})
			}
			if fetcher == nil {
				fetcher = s.PrefetchFetcher()
			}
		}
	}

	depthOf := make(map[string]int) // site name -> min link depth
	budget := c.cfg.MaxPages
	for len(queue) > 0 && budget > 0 && ctx.Err() == nil {
		it := queue[0]
		queue = queue[1:]
		if name, ok := originOf[it.url]; ok {
			if d, have := depthOf[name]; !have || it.depth < d {
				depthOf[name] = it.depth
			}
		}
		if it.depth >= c.cfg.Depth {
			continue
		}
		links, ok := c.fetchLinks(ctx, fetcher, it.url, rep)
		budget--
		if !ok {
			continue
		}
		for _, l := range links {
			if seen[l] {
				continue
			}
			if p, err := url.Parse(l); err != nil || !hosts[p.Host] {
				continue
			}
			seen[l] = true
			queue = append(queue, item{l, it.depth + 1})
		}
	}
	return depthOf
}

// fetchLinks returns the outbound links of one origin page, via the
// cross-cycle validator cache: a 304 answers from the cached link set
// for the cost of a header exchange.
func (c *Crawler) fetchLinks(ctx context.Context, fetcher *fetch.Fetcher, pageURL string, rep *CycleReport) ([]string, bool) {
	if fetcher == nil {
		return nil, false
	}
	c.mu.Lock()
	pe := c.pages[pageURL]
	var cond fetch.Condition
	if pe != nil {
		cond = fetch.Condition{ETag: pe.etag, LastModified: pe.lastModified}
	}
	c.mu.Unlock()

	page, err := fetcher.GetConditionalContext(ctx, pageURL, cond)
	rep.Crawled++
	if err != nil {
		return nil, false
	}
	if page.NotModified && pe != nil {
		rep.CrawlNotModified++
		return pe.links, true
	}
	links := extractLinks(page.Body, pageURL)
	c.mu.Lock()
	c.pages[pageURL] = &pageEntry{etag: page.ETag, lastModified: page.LastModified, links: links}
	c.mu.Unlock()
	return links, true
}

// rank orders sites by decayed demand plus a link-proximity boost
// (1/(1+depth) when the origin was seen in this cycle's crawl) and
// keeps the top N. Name breaks ties so cycles are deterministic.
func (c *Crawler) rank(sites []Site, demand map[string]float64, depth map[string]int) []Site {
	type scored struct {
		site  Site
		score float64
	}
	ranked := make([]scored, 0, len(sites))
	for _, s := range sites {
		score := demand[s.SiteName()]
		if d, ok := depth[s.SiteName()]; ok {
			score += 1 / float64(1+d)
		}
		ranked = append(ranked, scored{s, score})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].site.SiteName() < ranked[j].site.SiteName()
	})
	if len(ranked) > c.cfg.TopN {
		ranked = ranked[:c.cfg.TopN]
	}
	out := make([]Site, len(ranked))
	for i, r := range ranked {
		out[i] = r.site
	}
	return out
}

// refresh brings one site's bundle current. Decision table, in order:
// no stored validator → plain prefetch build (reuses an existing
// bundle, builds if absent); origin crawled this cycle and validators
// match → TTL touch only; otherwise a conditional probe (or the crawl's
// mismatch) decides between touch and forced rebuild.
func (c *Crawler) refresh(ctx context.Context, s Site, rep *CycleReport) {
	name := s.SiteName()
	val := s.BundleValidator()

	if val.ETag == "" && val.LastModified == "" {
		c.build(ctx, s, false, rep)
		return
	}

	origin := normalizeURL(s.Origin())
	c.mu.Lock()
	pe := c.pages[origin]
	c.mu.Unlock()
	if pe != nil && validatorsMatch(val, pe.etag, pe.lastModified) {
		c.touch(s, rep)
		return
	}
	if pe != nil {
		// The crawl already saw a different validator: the origin
		// changed since the bundle was built.
		c.count("msite_prefetch_revalidated_total", name)
		rep.Refreshed = append(rep.Refreshed, name)
		c.build(ctx, s, true, rep)
		return
	}

	// Origin not covered by this cycle's crawl budget: probe it with the
	// bundle's own validator.
	page, err := s.PrefetchFetcher().GetConditionalContext(ctx, origin,
		fetch.Condition{ETag: val.ETag, LastModified: val.LastModified})
	if err != nil {
		rep.Errors[name] = err.Error()
		return
	}
	c.count("msite_prefetch_revalidated_total", name)
	if page.NotModified {
		c.touch(s, rep)
		return
	}
	rep.Refreshed = append(rep.Refreshed, name)
	c.build(ctx, s, true, rep)
}

func (c *Crawler) build(ctx context.Context, s Site, force bool, rep *CycleReport) {
	name := s.SiteName()
	ran, err := s.PrefetchBuild(ctx, force)
	switch {
	case errors.Is(err, admission.ErrBackgroundBusy):
		c.count("msite_prefetch_skipped_busy_total", name)
		rep.SkippedBusy = append(rep.SkippedBusy, name)
	case err != nil:
		rep.Errors[name] = err.Error()
	case ran:
		c.count("msite_prefetch_built_total", name)
		rep.Built = append(rep.Built, name)
	}
}

func (c *Crawler) touch(s Site, rep *CycleReport) {
	name := s.SiteName()
	c.count("msite_prefetch_not_modified_total", name)
	rep.NotModified = append(rep.NotModified, name)
	s.TouchBundle()
}

func (c *Crawler) count(metric, site string) {
	if c.cfg.Obs != nil {
		c.cfg.Obs.Counter(metric, "site", site).Inc()
	}
}

// validatorsMatch compares the bundle's stored validator with the
// origin's current one: ETag decides when both sides have one,
// Last-Modified otherwise. Either side lacking both is a mismatch (no
// evidence of freshness).
func validatorsMatch(v proxy.BundleValidator, etag, lastModified string) bool {
	if v.ETag != "" && etag != "" {
		return v.ETag == etag
	}
	if v.LastModified != "" && lastModified != "" {
		return v.LastModified == lastModified
	}
	return false
}

// normalizeURL canonicalizes a URL for graph identity: fragment
// dropped, trailing slash on a bare host made explicit.
func normalizeURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return raw
	}
	u.Fragment = ""
	if u.Path == "" {
		u.Path = "/"
	}
	return u.String()
}

// extractLinks parses an origin page and returns its absolute,
// deduplicated anchor targets (http/https only), capped at 64 per page
// to keep a pathological page from flooding the crawl queue.
func extractLinks(body []byte, base string) []string {
	doc := html.Parse(string(body))
	baseURL, err := url.Parse(base)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	doc.Walk(func(n *dom.Node) bool {
		if len(out) >= 64 {
			return false
		}
		if n.Type != dom.ElementNode || n.Tag != "a" {
			return true
		}
		href := n.AttrOr("href", "")
		if href == "" || strings.HasPrefix(href, "#") ||
			strings.HasPrefix(href, "javascript:") || strings.HasPrefix(href, "mailto:") {
			return true
		}
		u, err := baseURL.Parse(href)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
			return true
		}
		abs := normalizeURL(u.String())
		if !seen[abs] {
			seen[abs] = true
			out = append(out, abs)
		}
		return true
	})
	return out
}

func names(sites []Site) []string {
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = s.SiteName()
	}
	return out
}
