package prefetch

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"msite/internal/admission"
	"msite/internal/fetch"
	"msite/internal/obs"
	"msite/internal/proxy"
)

// originPage is one conditional-GET-aware page of the fake origin.
type originPage struct {
	mu     sync.Mutex
	etag   string
	body   string
	gets   int // full 200 responses served
	cond   int // conditional requests seen
	got304 int
}

func (p *originPage) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		p.cond++
		if inm == p.etag {
			p.got304++
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	p.gets++
	w.Header().Set("ETag", p.etag)
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, p.body)
}

func (p *originPage) set(etag, body string) {
	p.mu.Lock()
	p.etag, p.body = etag, body
	p.mu.Unlock()
}

// fakeSite implements Site against the fake origin.
type fakeSite struct {
	name   string
	origin string

	mu         sync.Mutex
	val        proxy.BundleValidator
	builds     []bool // force flag of each PrefetchBuild call
	touches    int
	buildErr   error
	ranOnBuild bool
}

func (s *fakeSite) SiteName() string { return s.name }
func (s *fakeSite) Origin() string   { return s.origin }

func (s *fakeSite) PrefetchBuild(ctx context.Context, force bool) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.builds = append(s.builds, force)
	if s.buildErr != nil {
		return false, s.buildErr
	}
	return s.ranOnBuild, nil
}

func (s *fakeSite) BundleValidator() proxy.BundleValidator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

func (s *fakeSite) setValidator(v proxy.BundleValidator) {
	s.mu.Lock()
	s.val = v
	s.mu.Unlock()
}

func (s *fakeSite) TouchBundle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touches++
	return true
}

func (s *fakeSite) PrefetchFetcher() *fetch.Fetcher {
	return fetch.New(nil, fetch.WithTimeout(2*time.Second))
}

func (s *fakeSite) buildCalls() []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]bool(nil), s.builds...)
}

func (s *fakeSite) touchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.touches
}

// newOrigin serves a set of pages under one test server; pages maps
// path ("/", "/b") to its handler.
func newOrigin(t *testing.T, pages map[string]*originPage) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for path, pg := range pages {
		mux.Handle(path, pg)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBootstrapBuildsTopNByName(t *testing.T) {
	pages := map[string]*originPage{
		"/c/": {etag: `"v1"`, body: "<html><body>c</body></html>"},
		"/a/": {etag: `"v1"`, body: "<html><body>a</body></html>"},
		"/b/": {etag: `"v1"`, body: "<html><body>b</body></html>"},
	}
	srv := newOrigin(t, pages)

	var sites []Site
	var fakes []*fakeSite
	for _, name := range []string{"c", "a", "b"} {
		f := &fakeSite{name: name, origin: srv.URL + "/" + name + "/", ranOnBuild: true}
		fakes = append(fakes, f)
		sites = append(sites, f)
	}
	c := New(Config{TopN: 2, Depth: 1})
	c.SetSites(sites)

	rep := c.RunCycle(context.Background())
	// No demand anywhere: bootstrap crawls all roots, every site scores
	// the same depth boost, name breaks ties — a and b win.
	if want := []string{"a", "b"}; strings.Join(rep.Targets, ",") != strings.Join(want, ",") {
		t.Fatalf("targets = %v, want %v", rep.Targets, want)
	}
	for _, f := range fakes {
		calls := f.buildCalls()
		switch f.name {
		case "a", "b":
			if len(calls) != 1 || calls[0] {
				t.Fatalf("site %s builds = %v, want one unforced build", f.name, calls)
			}
		default:
			if len(calls) != 0 {
				t.Fatalf("site %s built despite missing the top-N cut", f.name)
			}
		}
	}
	if len(rep.Built) != 2 {
		t.Fatalf("Built = %v, want 2 entries", rep.Built)
	}
}

func TestDemandOutranksAndDecays(t *testing.T) {
	pages := map[string]*originPage{"/": {etag: `"v1"`, body: "<html><body>home</body></html>"}}
	srv := newOrigin(t, pages)

	hot := &fakeSite{name: "zz-hot", origin: srv.URL + "/", ranOnBuild: true}
	cold := &fakeSite{name: "aa-cold", origin: srv.URL + "/", ranOnBuild: true}
	c := New(Config{TopN: 1, Depth: 1})
	c.SetSites([]Site{hot, cold})

	for i := 0; i < 10; i++ {
		c.RecordHit("zz-hot")
	}
	rep := c.RunCycle(context.Background())
	if len(rep.Targets) != 1 || rep.Targets[0] != "zz-hot" {
		t.Fatalf("targets = %v, want [zz-hot]", rep.Targets)
	}

	// Demand halves each cycle; after enough idle cycles the hot site's
	// history evaporates and the name tiebreak flips the winner.
	for i := 0; i < 12; i++ {
		rep = c.RunCycle(context.Background())
	}
	if len(rep.Targets) != 1 || rep.Targets[0] != "aa-cold" {
		t.Fatalf("after decay targets = %v, want [aa-cold]", rep.Targets)
	}
}

func TestLinkDepthBoostsLinkedSite(t *testing.T) {
	// Site A's entry links to B's; C is an island. A has demand, so the
	// crawl roots at A and finds B one hop away — B outranks C.
	pages := map[string]*originPage{
		"/b": {etag: `"b1"`, body: "<html><body>b</body></html>"},
		"/c": {etag: `"c1"`, body: "<html><body>c</body></html>"},
	}
	srv := newOrigin(t, pages)
	pages["/"] = &originPage{etag: `"a1"`,
		body: `<html><body><a href="` + srv.URL + `/b">b</a></body></html>`}
	// Re-register is not possible on the running mux; build a fresh
	// server with all three pages instead.
	srv2 := newOrigin(t, pages)

	a := &fakeSite{name: "a", origin: srv2.URL + "/", ranOnBuild: true}
	b := &fakeSite{name: "b", origin: srv2.URL + "/b", ranOnBuild: true}
	cSite := &fakeSite{name: "c", origin: srv2.URL + "/c", ranOnBuild: true}
	cr := New(Config{TopN: 2, Depth: 2})
	cr.SetSites([]Site{a, b, cSite})
	cr.RecordHit("a")

	rep := cr.RunCycle(context.Background())
	if want := "a,b"; strings.Join(rep.Targets, ",") != want {
		t.Fatalf("targets = %v, want [a b]", rep.Targets)
	}
}

func TestRevalidation304TouchesInsteadOfBuilding(t *testing.T) {
	home := &originPage{etag: `"v1"`, body: "<html><body>home</body></html>"}
	srv := newOrigin(t, map[string]*originPage{"/": home})

	site := &fakeSite{name: "a", origin: srv.URL + "/", ranOnBuild: true}
	site.setValidator(proxy.BundleValidator{ETag: `"v1"`, FetchedAt: time.Now()})
	reg := obs.NewRegistry()
	c := New(Config{TopN: 1, Depth: 1, Obs: reg})
	c.SetSites([]Site{site})

	rep := c.RunCycle(context.Background())
	if len(rep.NotModified) != 1 || rep.NotModified[0] != "a" {
		t.Fatalf("NotModified = %v, want [a]", rep.NotModified)
	}
	if got := site.buildCalls(); len(got) != 0 {
		t.Fatalf("build calls = %v, want none on 304", got)
	}
	if site.touchCount() != 1 {
		t.Fatalf("touches = %d, want 1", site.touchCount())
	}
	snap := reg.Snapshot()
	if cs, ok := snap.Counter("msite_prefetch_not_modified_total", "site", "a"); !ok || cs.Value != 1 {
		t.Fatalf("not_modified counter = %+v ok=%v, want 1", cs, ok)
	}
}

func TestOriginChangeForcesRebuild(t *testing.T) {
	home := &originPage{etag: `"v2"`, body: "<html><body>new</body></html>"}
	srv := newOrigin(t, map[string]*originPage{"/": home})

	site := &fakeSite{name: "a", origin: srv.URL + "/", ranOnBuild: true}
	site.setValidator(proxy.BundleValidator{ETag: `"v1"`, FetchedAt: time.Now()})
	reg := obs.NewRegistry()
	c := New(Config{TopN: 1, Depth: 1, Obs: reg})
	c.SetSites([]Site{site})

	rep := c.RunCycle(context.Background())
	if len(rep.Refreshed) != 1 || rep.Refreshed[0] != "a" {
		t.Fatalf("Refreshed = %v, want [a]", rep.Refreshed)
	}
	got := site.buildCalls()
	if len(got) != 1 || !got[0] {
		t.Fatalf("build calls = %v, want one forced build", got)
	}
	snap := reg.Snapshot()
	if cs, ok := snap.Counter("msite_prefetch_revalidated_total", "site", "a"); !ok || cs.Value != 1 {
		t.Fatalf("revalidated counter = %+v ok=%v, want 1", cs, ok)
	}
}

func TestBusyBuildCountsSkipped(t *testing.T) {
	home := &originPage{etag: `"v1"`, body: "<html><body>home</body></html>"}
	srv := newOrigin(t, map[string]*originPage{"/": home})

	site := &fakeSite{name: "a", origin: srv.URL + "/", buildErr: admission.ErrBackgroundBusy}
	reg := obs.NewRegistry()
	c := New(Config{TopN: 1, Depth: 1, Obs: reg})
	c.SetSites([]Site{site})

	rep := c.RunCycle(context.Background())
	if len(rep.SkippedBusy) != 1 || rep.SkippedBusy[0] != "a" {
		t.Fatalf("SkippedBusy = %v, want [a]", rep.SkippedBusy)
	}
	snap := reg.Snapshot()
	if cs, ok := snap.Counter("msite_prefetch_skipped_busy_total", "site", "a"); !ok || cs.Value != 1 {
		t.Fatalf("skipped_busy counter = %+v ok=%v, want 1", cs, ok)
	}
}

func TestCrawlRevalidatesWithConditionalGets(t *testing.T) {
	home := &originPage{etag: `"v1"`,
		body: "<html><body><a href=\"/\">self</a></body></html>"}
	srv := newOrigin(t, map[string]*originPage{"/": home})

	site := &fakeSite{name: "a", origin: srv.URL + "/", ranOnBuild: true}
	c := New(Config{TopN: 1, Depth: 1})
	c.SetSites([]Site{site})
	c.RecordHit("a")

	c.RunCycle(context.Background())
	c.RecordHit("a")
	rep := c.RunCycle(context.Background())
	home.mu.Lock()
	fullGets, got304 := home.gets, home.got304
	home.mu.Unlock()
	// First cycle paid one full GET for the link walk; the second cycle
	// revalidated and got a 304 instead of a second body.
	if fullGets != 1 {
		t.Fatalf("origin served %d full responses, want 1", fullGets)
	}
	if got304 == 0 {
		t.Fatalf("origin served no 304s; conditional crawl not exercised")
	}
	if rep.CrawlNotModified == 0 {
		t.Fatalf("report shows no crawl 304s: %+v", rep)
	}
}

func TestCloseWithoutStartAndDoubleClose(t *testing.T) {
	c := New(Config{})
	c.Close()
	c.Close()

	c2 := New(Config{Interval: time.Hour})
	c2.Start()
	done := make(chan struct{})
	go func() { c2.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not stop the crawler loop")
	}
}

func TestExtractLinksFiltersAndResolves(t *testing.T) {
	body := []byte(`<html><body>
		<a href="/rel">rel</a>
		<a href="http://other.example/x">abs</a>
		<a href="#frag">frag</a>
		<a href="javascript:void(0)">js</a>
		<a href="mailto:x@example.com">mail</a>
	</body></html>`)
	links := extractLinks(body, "http://origin.example/page")
	want := []string{"http://origin.example/rel", "http://other.example/x"}
	if strings.Join(links, ",") != strings.Join(want, ",") {
		t.Fatalf("links = %v, want %v", links, want)
	}
}

// The demand ranking must survive a restart: hits recorded by one
// crawler process outrank cold sites in the next process (satellite of
// the cluster PR; ROADMAP item 2 leftover).
func TestDemandPersistsAcrossRestart(t *testing.T) {
	pg := &originPage{}
	pg.set(`"v1"`, `<html><body>origin</body></html>`)
	srv := newOrigin(t, map[string]*originPage{"/": pg})

	state := t.TempDir() + "/prefetch-demand.json"
	hot := &fakeSite{name: "zz-hot", origin: srv.URL + "/", ranOnBuild: true}
	cold := &fakeSite{name: "aa-cold", origin: srv.URL + "/", ranOnBuild: true}

	c1 := New(Config{TopN: 1, StateFile: state})
	c1.SetSites([]Site{hot, cold})
	for i := 0; i < 8; i++ {
		c1.RecordHit("zz-hot")
	}
	c1.Close() // snapshot without running a cycle

	// A fresh process: without the state file "aa-cold" would win the
	// top-1 slot on the name tiebreak; with it, the reloaded demand must
	// keep "zz-hot" ranked first.
	c2 := New(Config{TopN: 1, StateFile: state})
	c2.SetSites([]Site{hot, cold})
	rep := c2.RunCycle(context.Background())
	if len(rep.Targets) != 1 || rep.Targets[0] != "zz-hot" {
		t.Fatalf("restarted crawler targets = %v, want [zz-hot]", rep.Targets)
	}

	// The cycle's decayed scores were re-snapshotted; a third process
	// still remembers (halved) demand.
	c3 := New(Config{TopN: 1, StateFile: state})
	c3.SetSites([]Site{hot, cold})
	if rep := c3.RunCycle(context.Background()); len(rep.Targets) != 1 || rep.Targets[0] != "zz-hot" {
		t.Fatalf("third-generation targets = %v, want [zz-hot]", rep.Targets)
	}
}

// A corrupt or missing state file must cold-start, not fail.
func TestDemandStateFileCorruptIsColdStart(t *testing.T) {
	state := t.TempDir() + "/prefetch-demand.json"
	if err := os.WriteFile(state, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{StateFile: state})
	c.mu.Lock()
	n := len(c.demand)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("corrupt state loaded %d entries", n)
	}
	c.Close()
}
