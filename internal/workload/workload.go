// Package workload is the load harness behind Figure 7: closed-loop
// clients issue repeated requests for a remote site while a seeded
// U[0,1] draw marks each request as requiring (or not) the instantiation
// of a full browser instance, exactly per the paper's methodology —
// "A U[0,1] random number is assigned to each request; if the number
// exceeds the percentage being tested, the request is marked as not
// requiring a browser instance." No browser pool is used, matching the
// paper's prototype.
package workload

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"msite/internal/browser"
	"msite/internal/filter"
	"msite/internal/imaging"
	"msite/internal/spec"
)

// Config parameterizes one measurement window.
type Config struct {
	// OriginURL is the page under load.
	OriginURL string
	// BrowserPercent is the percentage of requests requiring a full
	// browser instance (0–100).
	BrowserPercent float64
	// Window is the measurement window (the paper uses one minute).
	Window time.Duration
	// Concurrency is the number of closed-loop clients.
	Concurrency int
	// ViewportWidth sizes browser instances.
	ViewportWidth int
	// Seed makes the U[0,1] marking reproducible.
	Seed int64
	// UsePool reuses browser instances across requests — off in the
	// paper ("Using a browser pool can potentially violate security
	// assumptions if shared by multiple clients", §4.6); exposed for the
	// ablation bench.
	UsePool bool
}

// Result is one window's measurement.
type Result struct {
	// Satisfied is the number of completed requests in the window.
	Satisfied int
	// FullRenders is how many requests took the browser path.
	FullRenders int
	// Lightweight is how many took the filter-only proxy path.
	Lightweight int
	// Window echoes the configured window.
	Window time.Duration
}

// Throughput returns satisfied requests per minute, the paper's y-axis.
func (r Result) Throughput() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Satisfied) * float64(time.Minute) / float64(r.Window)
}

// lightweightFilters is the typical filter-phase work of the cheap path.
var lightweightFilters = []spec.Filter{
	{Type: "doctype", Params: map[string]string{"value": "html"}},
	{Type: "title", Params: map[string]string{"value": "m.Site"}},
	{Type: "strip-scripts"},
	{Type: "rewrite-images", Params: map[string]string{"prefix": "/lowfi"}},
}

// Run executes one measurement window and reports the satisfied-request
// count.
func Run(cfg Config) (Result, error) {
	if cfg.OriginURL == "" {
		return Result{}, errors.New("workload: no origin URL")
	}
	if cfg.Window <= 0 {
		return Result{}, errors.New("workload: window must be positive")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.BrowserPercent < 0 || cfg.BrowserPercent > 100 {
		return Result{}, fmt.Errorf("workload: browser percent %v out of range", cfg.BrowserPercent)
	}

	// Fetch the page once up front; the window then measures proxy-side
	// adaptation work against a hot origin, as in the paper's LAN setup.
	pageSrc, err := fetchOnce(cfg.OriginURL)
	if err != nil {
		return Result{}, err
	}

	marker := newMarker(cfg.Seed, cfg.BrowserPercent)
	var (
		satisfied   int64
		fullRenders int64
		lightweight int64
	)
	deadline := time.Now().Add(cfg.Window)

	var pool *browser.Pool
	if cfg.UsePool {
		pool = browser.NewPool(cfg.ViewportWidth, cfg.Concurrency)
		defer pool.Close()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if marker.needsBrowser() {
					if err := fullRender(pageSrc, cfg, pool); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					atomic.AddInt64(&fullRenders, 1)
				} else {
					if err := lightweightServe(pageSrc); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
					atomic.AddInt64(&lightweight, 1)
				}
				atomic.AddInt64(&satisfied, 1)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return Result{}, err
	default:
	}
	return Result{
		Satisfied:   int(satisfied),
		FullRenders: int(fullRenders),
		Lightweight: int(lightweight),
		Window:      cfg.Window,
	}, nil
}

// fullRender is the expensive path: launch a browser instance (no reuse
// unless pooled), render the page, and encode the graphic.
func fullRender(pageSrc string, cfg Config, pool *browser.Pool) error {
	var inst *browser.Instance
	var err error
	if pool != nil {
		inst, err = pool.Acquire()
	} else {
		inst, err = browser.Launch(cfg.ViewportWidth)
	}
	if err != nil {
		return fmt.Errorf("workload: launching browser: %w", err)
	}
	_, err = inst.LoadAndEncode(pageSrc, imaging.FidelityLow)
	if pool != nil {
		pool.Release(inst)
	} else {
		inst.Close()
	}
	if err != nil {
		return fmt.Errorf("workload: browser render: %w", err)
	}
	return nil
}

// lightweightServe is the cheap path: the source-level filter phase
// only — the proxy work that avoids a DOM parse altogether (§3.2).
func lightweightServe(pageSrc string) error {
	out, err := filter.Apply(pageSrc, lightweightFilters)
	if err != nil {
		return fmt.Errorf("workload: filter phase: %w", err)
	}
	if len(out) == 0 {
		return errors.New("workload: empty filtered page")
	}
	return nil
}

func fetchOnce(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", fmt.Errorf("workload: fetching origin: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("workload: reading origin: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("workload: origin status %d", resp.StatusCode)
	}
	return string(body), nil
}

// marker draws the per-request U[0,1] marking under a lock (clients
// share one seeded stream so a sweep is reproducible regardless of
// scheduling).
type marker struct {
	mu      sync.Mutex
	rng     *rand.Rand
	percent float64
}

func newMarker(seed int64, percent float64) *marker {
	return &marker{rng: rand.New(rand.NewSource(seed)), percent: percent}
}

// needsBrowser applies the paper's rule: the request needs a browser
// unless the draw exceeds the percentage being tested.
func (m *marker) needsBrowser() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := m.rng.Float64() * 100
	return u < m.percent
}

// Point is one sweep measurement: a browser percentage and its runs.
type Point struct {
	BrowserPercent float64
	// Runs holds each repetition's result (the paper runs 3 per point).
	Runs []Result
}

// MeanThroughput averages the repetitions' throughput.
func (p Point) MeanThroughput() float64 {
	if len(p.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range p.Runs {
		sum += r.Throughput()
	}
	return sum / float64(len(p.Runs))
}

// Sweep runs reps windows at each percentage — the full Figure 7
// procedure.
func Sweep(cfg Config, percentages []float64, reps int) ([]Point, error) {
	if reps <= 0 {
		reps = 3
	}
	points := make([]Point, 0, len(percentages))
	for i, pct := range percentages {
		point := Point{BrowserPercent: pct}
		for rep := 0; rep < reps; rep++ {
			runCfg := cfg
			runCfg.BrowserPercent = pct
			runCfg.Seed = cfg.Seed + int64(i*1000+rep)
			res, err := Run(runCfg)
			if err != nil {
				return nil, err
			}
			point.Runs = append(point.Runs, res)
		}
		points = append(points, point)
	}
	return points, nil
}
