package workload

import (
	"net/http/httptest"
	"testing"
	"time"

	"msite/internal/origin"
)

func originServer(t *testing.T) *httptest.Server {
	t.Helper()
	forum := origin.NewForum(origin.DefaultForumConfig())
	srv := httptest.NewServer(forum.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing origin accepted")
	}
	if _, err := Run(Config{OriginURL: "http://x/", Window: 0}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := Run(Config{OriginURL: "http://x/", Window: time.Second, BrowserPercent: 150}); err == nil {
		t.Fatal("out-of-range percent accepted")
	}
}

func TestRunLightweightOnly(t *testing.T) {
	srv := originServer(t)
	res, err := Run(Config{
		OriginURL:      srv.URL + "/",
		BrowserPercent: 0,
		Window:         200 * time.Millisecond,
		Concurrency:    2,
		ViewportWidth:  800,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullRenders != 0 {
		t.Fatalf("full renders = %d at 0%%", res.FullRenders)
	}
	if res.Satisfied == 0 || res.Lightweight != res.Satisfied {
		t.Fatalf("result = %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput zero")
	}
}

func TestRunBrowserOnly(t *testing.T) {
	srv := originServer(t)
	res, err := Run(Config{
		OriginURL:      srv.URL + "/",
		BrowserPercent: 100,
		Window:         300 * time.Millisecond,
		Concurrency:    2,
		ViewportWidth:  800,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lightweight != 0 {
		t.Fatalf("lightweight = %d at 100%%", res.Lightweight)
	}
	if res.Satisfied == 0 {
		t.Fatal("no requests satisfied — browser path broken")
	}
}

// TestFigure7Shape is the scaled-down Figure 7 check: lightweight-only
// throughput must exceed browser-only throughput by well over an order
// of magnitude.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv := originServer(t)
	base := Config{
		OriginURL:     srv.URL + "/",
		Window:        400 * time.Millisecond,
		Concurrency:   2,
		ViewportWidth: 1024,
		Seed:          42,
	}
	light := base
	light.BrowserPercent = 0
	lightRes, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	heavy := base
	heavy.BrowserPercent = 100
	heavyRes, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	ratio := lightRes.Throughput() / heavyRes.Throughput()
	if ratio < 10 {
		t.Fatalf("lightweight/browser ratio = %.1f, want ≫10 (light=%.0f, heavy=%.0f req/min)",
			ratio, lightRes.Throughput(), heavyRes.Throughput())
	}
	t.Logf("Figure 7 endpoints: light=%.0f req/min, heavy=%.0f req/min, ratio=%.0fx",
		lightRes.Throughput(), heavyRes.Throughput(), ratio)
}

func TestMarkerDeterministicAndProportional(t *testing.T) {
	m1 := newMarker(7, 25)
	m2 := newMarker(7, 25)
	hits := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		a := m1.needsBrowser()
		if a != m2.needsBrowser() {
			t.Fatal("marker not deterministic")
		}
		if a {
			hits++
		}
	}
	frac := float64(hits) / n * 100
	if frac < 23 || frac > 27 {
		t.Fatalf("browser fraction = %.1f%%, want ≈25%%", frac)
	}
}

func TestSweep(t *testing.T) {
	srv := originServer(t)
	points, err := Sweep(Config{
		OriginURL:     srv.URL + "/",
		Window:        100 * time.Millisecond,
		Concurrency:   2,
		ViewportWidth: 640,
		Seed:          1,
	}, []float64{0, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(points[0].Runs) != 2 {
		t.Fatalf("points = %+v", points)
	}
	if points[0].MeanThroughput() <= points[1].MeanThroughput() {
		t.Fatal("0% browser should beat 100%")
	}
}

func TestPoolAblationFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv := originServer(t)
	base := Config{
		OriginURL:      srv.URL + "/",
		BrowserPercent: 100,
		Window:         300 * time.Millisecond,
		Concurrency:    2,
		ViewportWidth:  800,
		Seed:           3,
	}
	unpooled, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pooled := base
	pooled.UsePool = true
	pooledRes, err := Run(pooled)
	if err != nil {
		t.Fatal(err)
	}
	// Pooling skips Launch; it must not be slower (allow parity since
	// Launch is cheap relative to Load on tiny windows).
	if pooledRes.Satisfied < unpooled.Satisfied/2 {
		t.Fatalf("pooled=%d unpooled=%d", pooledRes.Satisfied, unpooled.Satisfied)
	}
}

func TestResultThroughputZeroWindow(t *testing.T) {
	if (Result{Satisfied: 5}).Throughput() != 0 {
		t.Fatal("zero window should yield 0")
	}
}
